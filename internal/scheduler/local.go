package scheduler

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gcs"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/objectstore"
	"repro/internal/types"
)

// ExecFunc runs one task whose dependencies have all been resolved to local
// bytes. The local scheduler invokes it on a dedicated goroutine after
// acquiring the task's resources.
type ExecFunc func(ctx context.Context, spec types.TaskSpec, args [][]byte)

// ReconFunc asks the fault-tolerance layer to make a lost object
// reconstructable again (lineage replay). May be nil when fault tolerance
// is disabled.
type ReconFunc func(id types.ObjectID)

// Fetcher pulls a remote object into the local store. lifetime.PullManager
// is the production implementation (chunked, with per-peer backpressure).
type Fetcher interface {
	Fetch(ctx context.Context, id types.ObjectID, locations []types.NodeID) error
}

// Prefetcher is optionally implemented by Fetchers that can start
// background pulls for a whole dependency set at once (lifetime.PullManager
// does). When a task parks waiting, the scheduler hands over its full
// missing-dependency list so overlapping chunked pulls begin immediately,
// before the per-dependency resolvers have even attached their readiness
// subscriptions (which on a sharded control plane each cost a stream
// round trip).
type Prefetcher interface {
	Prefetch(ids []types.ObjectID)
}

// RefLedger records task-argument borrows: while a task is queued or
// running here, its dependency objects hold an extra reference so the
// lifetime GC cannot reclaim them out from under the dispatcher.
// lifetime.Tracker is the production implementation. Retain and Release
// are local ledger appends; Flush pushes the ledger to the control plane
// and is called on the handoff edges where another node's release must
// not be able to outrun this node's retain (enqueue before the QUEUED
// stamp, the spill bridge before the respill publish).
type RefLedger interface {
	Retain(ids ...types.ObjectID)
	Release(ids ...types.ObjectID)
	Flush() bool
}

// TaskLedger is the owner side of task-state authority (DESIGN.md §13):
// the node that submits (or claims) a task stamps every lifecycle
// transition into an in-process ledger, flushed to the GCS task table as
// batched sequenced deltas. lifetime.TaskLedger is the production
// implementation. Adopt seeds a tenure (after the one synchronous AddTask
// or ClaimTask that establishes it), Transition stamps a state change
// without a control-plane round trip, EnsureLineage records return-object
// producer edges to ride the same flush, Disown drops local authority
// when the task leaves this node, and Flush forces the happens-before
// edge on every handoff another node may act on.
type TaskLedger interface {
	Adopt(id types.TaskID, baseSeq uint64, status types.TaskStatus)
	Transition(id types.TaskID, status types.TaskStatus, worker types.WorkerID, errMsg string) bool
	EnsureLineage(producer types.TaskID, returns ...types.ObjectID)
	Disown(id types.TaskID)
	Owns(id types.TaskID) bool
	Flush() bool
	// FlushTask forces the happens-before edge for ONE task's handoff
	// without draining the whole ledger inline on the spill path.
	FlushTask(id types.TaskID)
}

// ErrStopped is returned for submissions to a stopped scheduler.
var ErrStopped = errors.New("scheduler: stopped")

// ErrDraining is returned for global-scheduler assignments to a draining
// node (DESIGN.md §10): the admission fence of the drain protocol. The
// global scheduler parks the task and retries against a node that is still
// Active; locally-born tasks are never refused — they spill to the global
// queue instead, so a driver attached to a draining node keeps working.
var ErrDraining = errors.New("scheduler: node draining")

// ErrJobFenced is returned for submissions attributed to a job that is
// stopping or stopped (DESIGN.md §14): the local arm of the reclaim fence.
// It covers the races the global scheduler's dispatch fence cannot see —
// an assignment already in flight when the job stopped, and lineage
// reconstruction resubmitting a buried tenant's task. It wraps the typed
// jobs.ErrJobTerminated sentinel so the refusal stays matchable wherever
// it surfaces — in particular through a blocked Get whose object went
// Lost in the reclaim race and whose reconstruction the fence refused.
var ErrJobFenced = fmt.Errorf("scheduler: %w", jobs.ErrJobTerminated)

// Spill thresholds (LocalConfig.SpillThreshold).
const (
	// SpillNever disables spilling: single-node clusters.
	SpillNever = -1
	// SpillAlways forwards every locally-born task to the global scheduler:
	// the "central-only" ablation of experiment E8.
	SpillAlways = 0
)

// LocalConfig configures a Local scheduler.
type LocalConfig struct {
	Node  types.NodeID
	Total types.Resources
	Ctrl  gcs.API
	Store *objectstore.Store
	// Fetcher pulls remote dependencies; nil disables cross-node fetch.
	Fetcher Fetcher
	// Refs records argument borrows for the lifetime subsystem; nil
	// disables borrow tracking.
	Refs RefLedger
	// Ledger is the owner-side task-state ledger (DESIGN.md §13); nil
	// falls back to per-transition synchronous control-plane writes.
	Ledger TaskLedger
	// Exec runs ready tasks (assigned after construction by the node).
	Exec ExecFunc
	// Recon triggers lineage reconstruction of lost dependencies.
	Recon ReconFunc
	// SpillThreshold: locally-born tasks spill to the global scheduler when
	// the runnable backlog reaches this length. SpillNever / SpillAlways
	// select the extremes.
	SpillThreshold int
	// DepPollInterval bounds how stale a missed object-ready edge can be;
	// the pub/sub fast path makes it rarely matter. Zero selects a default.
	DepPollInterval time.Duration
	// DisablePrefetch turns off the park-time dependency prefetch (the
	// before/after arm of experiment E19).
	DisablePrefetch bool
	// Metrics, when set, records queue depths, task-flow counters, and the
	// dispatch-latency histogram. Nil disables instrumentation.
	Metrics *metrics.Registry
	// Tracer, when set, records prefetch spans tagged with the task's
	// trace context. Nil disables.
	Tracer *metrics.Tracer
	// JobFence, when set, reports whether a job is stopping or stopped;
	// submissions under such a job are refused with ErrJobFenced. Nil
	// disables the fence (single-tenant deployments).
	JobFence func(types.JobID) bool
	// InlineDispatch enables the inline (trampoline) fast path (DESIGN.md
	// §15): an eligible locally-born task — zero unresolved deps, small
	// resources that fit right now, not an actor method, node not draining,
	// inline chain under the depth cap — runs synchronously on the
	// submitting goroutine, skipping queue, dispatch loop, and worker
	// goroutine. Every queued-path invariant (borrows, ledger stamps, pins,
	// resource accounting) is preserved; only the hops are removed.
	InlineDispatch bool
	// InlineFence, when set, disables inline dispatch while it returns true.
	// The node wires it to the multi-tenant contention signal so a flooding
	// tenant cannot use inline submission to bypass fair-share dispatch.
	InlineFence func() bool
	// ExecInline runs inline tasks (assigned after construction by the
	// node, like Exec). It is a separate hook so the executor can skip the
	// per-task goroutine bookkeeping and tag spans inline=true.
	ExecInline ExecFunc
}

// inlineDepthCap bounds how many inline executions may nest on one
// goroutine: a task running inline that submits an eligible child runs it
// inline too (depth+1), until the cap bounces the chain back to the queue —
// the trampoline that keeps recursive submission chains from growing the
// stack without bound. Eight levels covers realistic fan-in chains while
// keeping worst-case stack growth trivial.
const inlineDepthCap = 8

// queuedTask is a task whose dependencies are all local, awaiting
// resources.
type queuedTask struct {
	spec types.TaskSpec
	// enqueuedAt feeds the dispatch-latency histogram (runnable → resources
	// granted). Wall clock, read only as a difference.
	enqueuedAt time.Time
}

// waitingTask is a task with unresolved dependencies.
type waitingTask struct {
	spec    types.TaskSpec
	missing map[types.ObjectID]bool
	// cancel is closed when the task is evicted from the waiting set
	// without its dependencies arriving (placement-group release), so its
	// resolver goroutines stop polling — and stop fetching bytes a task
	// that will never run here has no use for.
	cancel chan struct{}
}

// Local is the per-node scheduler: the first stop for every task born on
// this node (bottom-up scheduling). Tasks become runnable when their
// dependency objects are resident in the node's object store, are admitted
// when their resource demand fits, and spill to the global scheduler when
// the node is overloaded or the task is locally infeasible.
type Local struct {
	cfg  LocalConfig
	res  *resourcePool
	stop chan struct{}
	kick chan struct{}

	mu       sync.Mutex
	runnable []*queuedTask
	waiting  map[types.TaskID]*waitingTask
	bundles  map[bundleKey]*resourcePool // gang reservations held here
	// holding maps a dispatched task to the pool instance it acquired its
	// resources from. Releases must go through this exact instance: a
	// bundle released and re-reserved creates a NEW pool under the same
	// key, and a key-resolved release from a task admitted against the old
	// pool would inflate the new pool's books above its reservation.
	// (Detach forwarding routes releases into dead pools to the general
	// pool, so the captured instance is always safe to release into.)
	holding map[types.TaskID]*resourcePool
	stopped bool

	wg sync.WaitGroup

	// draining is the admission fence (DESIGN.md §10): while set, placed
	// assignments are refused with ErrDraining, locally-born tasks spill to
	// the global queue, and retry/re-enqueue paths respill instead of
	// re-queueing here.
	draining atomic.Bool

	// Counters for heartbeats, dashboards, and benchmarks.
	submitted  atomic.Int64
	spilled    atomic.Int64
	dispatched atomic.Int64
	inlined    atomic.Int64

	// obs holds pre-resolved instruments (nil-safe; see LocalConfig).
	obs schedObs
}

// schedObs bundles the scheduler's instruments so hot paths touch
// pre-resolved pointers, never the registry.
type schedObs struct {
	submitted  *metrics.Counter
	spilled    *metrics.Counter
	dispatched *metrics.Counter
	inlined    *metrics.Counter
	dispatchNs *metrics.Histogram
	inlineNs   *metrics.Histogram
}

// NewLocal builds a local scheduler; call Start before submitting.
func NewLocal(cfg LocalConfig) *Local {
	if cfg.DepPollInterval <= 0 {
		cfg.DepPollInterval = 20 * time.Millisecond
	}
	l := &Local{
		cfg:     cfg,
		res:     newResourcePool(cfg.Total),
		stop:    make(chan struct{}),
		kick:    make(chan struct{}, 1),
		waiting: make(map[types.TaskID]*waitingTask),
		holding: make(map[types.TaskID]*resourcePool),
	}
	l.obs = schedObs{
		submitted:  cfg.Metrics.Counter("scheduler.tasks.submitted"),
		spilled:    cfg.Metrics.Counter("scheduler.tasks.spilled"),
		dispatched: cfg.Metrics.Counter("scheduler.tasks.dispatched"),
		inlined:    cfg.Metrics.Counter("scheduler.tasks.inlined"),
		dispatchNs: cfg.Metrics.Histogram("scheduler.dispatch.latency.ns"),
		inlineNs:   cfg.Metrics.Histogram("scheduler.inline.latency.ns"),
	}
	if cfg.Metrics != nil {
		cfg.Metrics.GaugeFunc("scheduler.queue.depth", func() int64 { return int64(l.QueueLen()) })
		cfg.Metrics.GaugeFunc("scheduler.waiting.depth", func() int64 { return int64(l.WaitingLen()) })
	}
	return l
}

// Start launches the dispatch loop.
func (l *Local) Start() {
	l.wg.Add(1)
	go l.dispatchLoop()
}

// Stop halts dispatching and abandons queued work (node shutdown). Every
// abandoned task's enqueue-time argument borrows are returned through the
// ledger and flushed, so a standalone scheduler Stop leaves refcounts
// exactly where they would be had the tasks never been enqueued — without
// this, queued tasks' dependencies stayed retained forever and the
// cluster GC could never reclaim them. Tasks already dispatched are not
// touched: runTask's deferred release settles those, and wg.Wait below
// lets them finish doing so.
func (l *Local) Stop() {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	l.stopped = true
	var abandoned []types.TaskSpec
	for _, t := range l.runnable {
		abandoned = append(abandoned, t.spec)
	}
	l.runnable = nil
	for id, w := range l.waiting {
		abandoned = append(abandoned, w.spec)
		delete(l.waiting, id)
		close(w.cancel) // stop its resolvers' polling and fetching
	}
	l.mu.Unlock()
	close(l.stop)
	if l.cfg.Refs != nil && len(abandoned) > 0 {
		for _, spec := range abandoned {
			l.cfg.Refs.Release(spec.Deps()...)
		}
		l.cfg.Refs.Flush()
	}
	l.wg.Wait()
}

// QueueLen reports the runnable backlog (heartbeat load signal).
func (l *Local) QueueLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.runnable)
}

// WaitingLen reports tasks blocked on dependencies.
func (l *Local) WaitingLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.waiting)
}

// Stats returns (submitted, spilled, dispatched) counters.
func (l *Local) Stats() (int64, int64, int64) {
	return l.submitted.Load(), l.spilled.Load(), l.dispatched.Load()
}

// Inlined reports how many tasks ran through the inline fast path
// (DESIGN.md §15). Inline dispatches are also counted in dispatched, so
// dispatched-inlined is the queued-path share.
func (l *Local) Inlined() int64 { return l.inlined.Load() }

// Available snapshots the resource pool (heartbeat load signal).
func (l *Local) Available() types.Resources {
	_, avail := l.res.snapshot()
	return avail
}

// ReleaseFor lends a blocked task's resources back to the pool it holds
// them from — its bundle reservation for placement-group members, the
// general pool otherwise (worker lending; see worker.Executor). The lend
// clears the task's pool binding; ReacquireFor re-binds to whatever pool
// it reacquires from, which may legitimately differ after a group
// rollback or re-reservation.
func (l *Local) ReleaseFor(spec types.TaskSpec) {
	l.releaseHeld(spec)
	l.kickDispatch()
}

// ReacquireFor blocks until the lent resources are regained. The wait is
// re-resolved periodically (and immediately on bundle-pool detach): a
// member task parked on the general pool while its bundle was away would
// otherwise never notice the bundle returning to this node — re-carving
// the very capacity the task is waiting for out of the pool it waits on.
func (l *Local) ReacquireFor(spec types.TaskSpec) {
	const reResolve = 100 * time.Millisecond
	for {
		timeout := time.Duration(0)
		if spec.InGroup() {
			timeout = reResolve
		}
		pool := l.poolFor(spec)
		if pool.acquireBlocking(spec.Resources, l.stop, timeout) {
			l.bindHeld(spec.ID, pool)
			return
		}
		select {
		case <-l.stop:
			return
		default: // pool detached or re-resolve tick: retry against the current pool
		}
	}
}

// Submit is the entry point for tasks born on this node (placed=false) and
// for tasks assigned by the global scheduler (placed=true). It implements
// the spillover decision of Section 3.2.2.
func (l *Local) Submit(spec types.TaskSpec, placed bool) error {
	return l.SubmitAt(spec, placed, 0)
}

// SubmitAt is Submit carrying the submitter's inline-dispatch depth
// (DESIGN.md §15): zero for drivers and queued tasks, >0 for submissions
// made by a task currently running inline on this goroutine. The depth
// only affects the trampoline cap; every other decision is Submit's.
func (l *Local) SubmitAt(spec types.TaskSpec, placed bool, depth int) error {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return ErrStopped
	}
	backlog := len(l.runnable)
	l.mu.Unlock()
	if !spec.Job.IsNil() && l.cfg.JobFence != nil && l.cfg.JobFence(spec.Job) {
		// The job reclaim fence (DESIGN.md §14). Refusing before the
		// ownership claim keeps the record PENDING, where the reclaim pass
		// buries it; admitting would resurrect work the stop already swept.
		return ErrJobFenced
	}
	l.submitted.Add(1)
	l.obs.submitted.Inc()

	fresh := l.record(spec, placed)
	if placed {
		// A draining node admits nothing: refuse before the ownership claim
		// so the global scheduler parks the task and re-places it on a node
		// that is still Active (the task stays PENDING, unowned).
		if l.draining.Load() {
			return ErrDraining
		}
		// A global-scheduler assignment. Several global schedulers may each
		// place the same spilled task ("one or more global schedulers",
		// Section 3.2); the QUEUED claim below makes exactly one
		// destination own it. With a ledger the claim also opens this
		// node's ownership tenure: the returned sequence is the fence base
		// every ledger delta for this task must exceed.
		if l.cfg.Ledger != nil {
			seq, ok := l.cfg.Ctrl.ClaimTask(spec.ID, []types.TaskStatus{types.TaskPending}, types.TaskQueued, l.cfg.Node)
			if !ok {
				return nil
			}
			l.cfg.Ledger.Adopt(spec.ID, seq, types.TaskQueued)
		} else if !l.cfg.Ctrl.CASTaskStatus(spec.ID, []types.TaskStatus{types.TaskPending}, types.TaskQueued) {
			return nil
		}
		// The claim won: this node owns the task. An eligible tiny task
		// runs inline right here — a globally-placed assignment arrives on
		// an RPC handler goroutine, the same submit-side position as a
		// local birth (§15) — and falls back to the queue otherwise.
		if l.inlineEligible(spec, depth) && l.runInline(spec, depth) {
			return nil
		}
		l.enqueue(spec)
		return nil
	}
	if !fresh && !l.shouldRerun(spec) {
		// Already known to the control plane: either in flight elsewhere or
		// finished with intact outputs (replayed submission, results
		// reusable outright). Only the CAS winner re-runs.
		return nil
	}

	// Grouped tasks run only where their bundle reservation lives: born on
	// the holder they enqueue directly, anywhere else they spill so the
	// gang-aware global scheduler routes them (Section 3.2.2's spillover,
	// reused as the placement-group routing fabric). A soft locality hint
	// naming another node spills for the same reason — the hint is only
	// meaningful with the global view.
	if spec.InGroup() {
		if l.hasBundle(spec.Group, spec.Bundle) && !l.draining.Load() {
			l.enqueue(spec)
		} else {
			l.spilled.Add(1)
			l.obs.spilled.Inc()
			l.bridgeSpill(spec)
			l.cfg.Ctrl.PublishSpill(spec)
		}
		return nil
	}
	localityElsewhere := !spec.Locality.IsNil() && spec.Locality != l.cfg.Node
	infeasible := !spec.Resources.FeasibleOn(l.cfg.Total)
	overloaded := l.cfg.SpillThreshold >= 0 && backlog >= l.cfg.SpillThreshold
	if infeasible || overloaded || localityElsewhere || l.draining.Load() {
		l.spilled.Add(1)
		l.obs.spilled.Inc()
		l.bridgeSpill(spec)
		l.cfg.Ctrl.PublishSpill(spec)
		return nil
	}
	// Inline fast path (DESIGN.md §15): after every refusal above has had
	// its say — job fence, dedupe, group routing, spill decision — an
	// eligible task runs right here on the submitting goroutine. Falling
	// through to enqueue on any failure keeps inline strictly an
	// optimization: the queued path is always a correct answer.
	if l.inlineEligible(spec, depth) && l.runInline(spec, depth) {
		return nil
	}
	l.enqueue(spec)
	return nil
}

// inlineEligible is the cheap pre-check of the §15 eligibility predicate.
// It runs lock-free and may go stale immediately (an arg evicted after the
// Contains probe, the pool drained by a racing dispatch); runInline
// re-validates everything that matters under the proper synchronization
// and falls back to the queue when the optimistic read was wrong.
func (l *Local) inlineEligible(spec types.TaskSpec, depth int) bool {
	if !l.cfg.InlineDispatch || l.cfg.ExecInline == nil {
		return false
	}
	if depth >= inlineDepthCap {
		return false // trampoline: deep inline chains bounce to the queue
	}
	if spec.Actor || spec.InGroup() {
		return false // ordered (actor) and gang (group) work keeps the queue
	}
	if l.draining.Load() {
		return false
	}
	if l.cfg.InlineFence != nil && l.cfg.InlineFence() {
		return false // multi-tenant contention: fair-share ordering governs
	}
	// Small tasks only: a demand over one unit of any resource is not the
	// sub-millisecond shape this path exists for, and letting it cut the
	// queue would invert the dispatch loop's admission order.
	for _, amt := range spec.Resources {
		if amt > 1 {
			return false
		}
	}
	for _, dep := range spec.Deps() {
		if !l.cfg.Store.Contains(dep) {
			return false
		}
	}
	return true
}

// runInline executes one eligible task synchronously on the submitting
// goroutine, preserving the queued path's invariant order: resources
// acquired and bound, borrows retained AND flushed before the QUEUED stamp,
// ledger transitions under the same owner fencing, args pinned for the
// duration of execution, releases in runTask's LIFO order. Returns false —
// with all books balanced — when admission or argument gathering fails, in
// which case the caller enqueues normally.
func (l *Local) runInline(spec types.TaskSpec, depth int) bool {
	start := time.Now()
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return false
	}
	if !l.res.tryAcquire(spec.Resources) {
		l.mu.Unlock()
		return false // no headroom right now: the dispatch loop will admit it
	}
	l.holding[spec.ID] = l.res
	// Count the inline run in wg so Stop's wg.Wait covers it exactly like a
	// dispatched runTask; registered before mu unlocks so a concurrent Stop
	// cannot miss it.
	l.wg.Add(1)
	l.mu.Unlock()
	defer l.wg.Done()
	defer l.kickDispatch()

	// Borrow-before-stamp, exactly as enqueue: the flush puts this node's
	// share in the control plane's count before any state the rest of the
	// cluster can act on.
	deps := spec.Deps()
	if l.cfg.Refs != nil && len(deps) > 0 {
		l.cfg.Refs.Retain(deps...)
		l.cfg.Refs.Flush()
	}
	if l.cfg.Ledger != nil {
		l.cfg.Ledger.Transition(spec.ID, types.TaskQueued, types.NilWorkerID, "")
		l.cfg.Ledger.Transition(spec.ID, types.TaskScheduled, types.NilWorkerID, "")
	} else {
		l.cfg.Ctrl.SetTaskStatus(spec.ID, types.TaskQueued, l.cfg.Node, types.NilWorkerID, "")
		l.cfg.Ctrl.SetTaskStatus(spec.ID, types.TaskScheduled, l.cfg.Node, types.NilWorkerID, "")
	}
	args, missing := l.gatherArgs(spec)
	if missing {
		// An arg was evicted between the Contains probe and the pinned Get.
		// Settle every book this attempt opened (pins are already unwound by
		// gatherArgs) and let the caller enqueue — which re-retains before
		// parking, the same re-borrow ordering as runTask's requeue path.
		l.releaseHeld(spec)
		if l.cfg.Refs != nil {
			l.cfg.Refs.Release(deps...)
		}
		return false
	}
	// LIFO to mirror runTask: borrows release last, after unpin and the
	// resource release.
	if l.cfg.Refs != nil {
		defer l.cfg.Refs.Release(deps...)
	}
	defer l.releaseHeld(spec)
	defer l.unpinArgs(spec)
	l.dispatched.Add(1)
	l.obs.dispatched.Inc()
	l.inlined.Add(1)
	l.obs.inlined.Inc()
	l.obs.dispatchNs.Observe(time.Since(start).Nanoseconds())
	// No cancel-watcher goroutine: Stop's wg.Wait already waits for this
	// frame, and the depth in the context lets child submissions trampoline.
	ctx := types.WithInlineDepth(context.Background(), depth+1)
	l.cfg.ExecInline(ctx, spec, args)
	l.obs.inlineNs.Observe(time.Since(start).Nanoseconds())
	return true
}

// bridgeSpill holds a borrow on a spilled task's dependencies while the
// task travels through the global spill queue: without it there is a
// window — publish until the destination node's enqueue — in which the
// task holds no references and a driver Release could let the GC reclaim
// its arguments. The bridge drops once the task reaches SCHEDULED (the
// destination's enqueue-time borrow is in place strictly before that
// transition) or a terminal state; an unplaceable task keeps its bridge,
// which is the conservative direction (leak, never lose a live argument).
func (l *Local) bridgeSpill(spec types.TaskSpec) {
	if l.cfg.Ledger != nil {
		// Flush-before-handoff for task state: the spilled task's lineage
		// ensures and latest stamped state must be in the follower table
		// before another node can act on the spill, and local authority
		// drops — whoever claims the task next owns its lifecycle. Only
		// THIS task's unflushed state matters for the handoff; a full
		// ledger flush here would serialize every spill behind the whole
		// dirty set (a per-task sync round trip on the submit path).
		l.cfg.Ledger.FlushTask(spec.ID)
		l.cfg.Ledger.Disown(spec.ID)
	}
	if l.cfg.Refs == nil {
		return
	}
	deps := spec.Deps()
	if len(deps) == 0 {
		return
	}
	l.cfg.Refs.Retain(deps...)
	// The bridge borrow must be in the control plane's count before the
	// caller publishes the respill: the moment the spill is visible, the
	// driver (or a previous holder) may release, and a pending-only retain
	// would let that release race the count to zero.
	l.cfg.Refs.Flush()
	l.wg.Add(1)
	go l.releaseBridge(spec.ID, deps)
}

func (l *Local) releaseBridge(task types.TaskID, deps []types.ObjectID) {
	defer l.wg.Done()
	sub := l.cfg.Ctrl.SubscribeTaskStatus(task)
	defer sub.Close()
	for {
		if st, ok := l.cfg.Ctrl.GetTask(task); ok {
			switch st.Status {
			case types.TaskScheduled, types.TaskRunning, types.TaskFinished, types.TaskLost, types.TaskFailed:
				l.cfg.Refs.Release(deps...)
				return
			}
		}
		select {
		case <-sub.C():
		case <-time.After(l.cfg.DepPollInterval):
		case <-l.stop:
			// Node stopping mid-bridge: keep the borrow rather than expose
			// a task still parked in the queue. Node.Shutdown's tracker
			// ReleaseAll settles the count.
			return
		}
	}
}

// Enqueue bypasses the duplicate-submission check and spill decision; the
// executor's retry path uses it (the task's status was already reset to
// PENDING by the retry bookkeeping, so the dedupe logic would drop it).
func (l *Local) Enqueue(spec types.TaskSpec) error {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return ErrStopped
	}
	l.mu.Unlock()
	// Inline fast path for already-admitted work (executor retries,
	// recovered tasks): same eligibility predicate as Submit, at depth 0 —
	// the caller is not an inline frame. Recursion through a failing
	// task's retry re-enqueue is bounded by its MaxRetries budget.
	if l.inlineEligible(spec, 0) && l.runInline(spec, 0) {
		return nil
	}
	l.enqueue(spec)
	return nil
}

// SetDraining flips the admission fence (DESIGN.md §10). Setting it does
// not evict already-queued work — call DrainBacklog for that; clearing it
// (drain rollback) lets the node admit again.
func (l *Local) SetDraining(d bool) { l.draining.Store(d) }

// Draining reports whether the admission fence is up.
func (l *Local) Draining() bool { return l.draining.Load() }

// Busy reports how many tasks this scheduler still owns in any stage:
// runnable, waiting on dependencies, or dispatched with resources held.
// A draining node quiesces when DrainBacklog has evicted the queues and
// Busy reaches zero (every dispatched task released its resources).
func (l *Local) Busy() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.runnable) + len(l.waiting) + len(l.holding)
}

// DrainBacklog evicts every queued and waiting task back through the
// global spill queue (the drain protocol's backlog hand-off): resolvers
// are cancelled, ownership claims are released via CAS, and each task's
// dependencies ride a spill bridge until its next owner's borrows are in
// place. Dispatched (running) tasks are untouched — the drain waits for
// them via Busy. Returns how many tasks were handed off.
func (l *Local) DrainBacklog() int {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return 0
	}
	var evicted []types.TaskSpec
	for _, t := range l.runnable {
		evicted = append(evicted, t.spec)
	}
	l.runnable = nil
	for id, w := range l.waiting {
		evicted = append(evicted, w.spec)
		delete(l.waiting, id)
		close(w.cancel) // stop its resolvers' polling and fetching
	}
	l.mu.Unlock()
	for _, spec := range evicted {
		l.spillAway(spec)
		// Return the enqueue-time borrows last, mirroring runTask's LIFO
		// ordering (spillAway re-retains through the bridge first).
		if l.cfg.Refs != nil {
			l.cfg.Refs.Release(spec.Deps()...)
		}
	}
	return len(evicted)
}

// spillAway routes a task this node owns (or owned) back through the
// global spill queue. Unlike the group respill, it also handles tasks
// already reset to PENDING (the executor's retry path during a drain):
// the CAS releases a live QUEUED/SCHEDULED claim, and the publish happens
// whenever the task ends up unowned — if the CAS lost to a concurrent
// placement, whoever won owns the task and no publish is needed.
func (l *Local) spillAway(spec types.TaskSpec) {
	l.bridgeSpill(spec)
	if !l.cfg.Ctrl.CASTaskStatus(spec.ID, []types.TaskStatus{types.TaskQueued, types.TaskScheduled}, types.TaskPending) {
		if st, ok := l.cfg.Ctrl.GetTask(spec.ID); !ok || st.Status != types.TaskPending {
			return // claimed elsewhere (or terminal): not ours to publish
		}
	}
	l.spilled.Add(1)
	l.obs.spilled.Inc()
	l.cfg.Ctrl.PublishSpill(spec)
}

// SetExec assigns the execution callback; must be called before Start.
// (The node wires this after constructing the executor, which needs the
// node itself as the tasks' API backend.)
func (l *Local) SetExec(fn ExecFunc) { l.cfg.Exec = fn }

// SetRecon assigns the lost-object reconstruction trigger.
func (l *Local) SetRecon(fn ReconFunc) { l.cfg.Recon = fn }

// SetExecInline assigns the inline execution callback (DESIGN.md §15);
// must be called before Start, alongside SetExec.
func (l *Local) SetExecInline(fn ExecFunc) { l.cfg.ExecInline = fn }

// record writes the lineage record; reports whether the task is new.
// The lineage ensure runs unconditionally (it is create-or-heal): a
// duplicate AddTask can be a retry whose original ack died with a
// control-plane shard between the task write and the object writes, and
// skipping the ensure would leave return objects without their Producer
// edge — losing lineage reconstructability for anything this task outputs.
//
// With a ledger this is the ONE synchronous control-plane write a
// locally-born task pays (admission): the task is owned from birth, and
// its return-object producer edges ride the ledger's batched flush
// instead of one EnsureObject round trip per return.
func (l *Local) record(spec types.TaskSpec, placed bool) bool {
	if l.cfg.Ledger != nil {
		st := types.TaskState{Spec: spec, Status: types.TaskPending, Node: l.cfg.Node}
		if !placed {
			st.Owner = l.cfg.Node // born here: owned from birth (§13)
		}
		added := l.cfg.Ctrl.AddTask(st)
		if added && !placed {
			l.cfg.Ledger.Adopt(spec.ID, 0, types.TaskPending)
		}
		returns := make([]types.ObjectID, spec.NumReturns)
		for i := range returns {
			returns[i] = spec.ReturnID(i)
		}
		l.cfg.Ledger.EnsureLineage(spec.ID, returns...)
		return added
	}
	added := l.cfg.Ctrl.AddTask(types.TaskState{Spec: spec, Status: types.TaskPending, Node: l.cfg.Node})
	for i := 0; i < spec.NumReturns; i++ {
		l.cfg.Ctrl.EnsureObject(spec.ReturnID(i), spec.ID)
	}
	return added
}

// claimPending re-owns a stale task for this node (the steal paths of
// shouldRerun): with a ledger the claim names this node as the new owner
// and seeds the tenure's fence base; without one it is the legacy CAS
// reset. Either way the previous tenure's straggler writes lose.
func (l *Local) claimPending(id types.TaskID, from []types.TaskStatus) bool {
	if l.cfg.Ledger != nil {
		seq, ok := l.cfg.Ctrl.ClaimTask(id, from, types.TaskPending, l.cfg.Node)
		if ok {
			l.cfg.Ledger.Adopt(id, seq, types.TaskPending)
		}
		return ok
	}
	return l.cfg.Ctrl.CASTaskStatus(id, from, types.TaskPending)
}

// shouldRerun decides whether a duplicate submission must actually
// re-execute (lineage replay after loss) or can be dropped.
func (l *Local) shouldRerun(spec types.TaskSpec) bool {
	st, ok := l.cfg.Ctrl.GetTask(spec.ID)
	if !ok {
		return true
	}
	switch st.Status {
	case types.TaskPending, types.TaskQueued, types.TaskScheduled, types.TaskRunning:
		// In flight somewhere. If that somewhere is a dead node, steal it.
		if node, alive := l.nodeAlive(st.Node); node && alive {
			return false
		}
		return l.claimPending(spec.ID, []types.TaskStatus{st.Status})
	case types.TaskFinished:
		if l.outputsIntact(spec) {
			return false
		}
		return l.claimPending(spec.ID, []types.TaskStatus{types.TaskFinished})
	case types.TaskLost, types.TaskFailed:
		return l.claimPending(spec.ID, []types.TaskStatus{st.Status})
	}
	return false
}

func (l *Local) nodeAlive(id types.NodeID) (known, alive bool) {
	if id.IsNil() {
		return false, false
	}
	info, ok := l.cfg.Ctrl.GetNode(id)
	return ok, ok && info.Alive
}

func (l *Local) outputsIntact(spec types.TaskSpec) bool {
	for i := 0; i < spec.NumReturns; i++ {
		info, ok := l.cfg.Ctrl.GetObject(spec.ReturnID(i))
		if !ok || info.State != types.ObjectReady {
			return false
		}
	}
	return true
}

// enqueue moves a task into runnable or waiting depending on dependency
// residency, starting a resolver per missing dependency (dataflow trigger).
func (l *Local) enqueue(spec types.TaskSpec) {
	// Drain divert: paths that bypass Submit's fence (the executor's retry
	// re-enqueue, runTask's evicted-args requeue, racing placements) land
	// here; a draining node hands the task to the global queue instead of
	// growing a backlog it is trying to shed.
	if l.draining.Load() {
		l.spillAway(spec)
		return
	}
	// Prefetch the missing dependency set before anything else: the pulls
	// run in the background while the control-plane writes below (status
	// stamp, per-dependency borrow retains) pay their round trips, so by
	// the time the per-dependency resolvers attach, small dependencies are
	// often already local (E19). The snapshot races nothing: prefetch is
	// best-effort and the authoritative missing set is recomputed under
	// the lock below.
	if !l.cfg.DisablePrefetch && l.cfg.Fetcher != nil {
		if pf, ok := l.cfg.Fetcher.(Prefetcher); ok {
			var absent []types.ObjectID
			seen := make(map[types.ObjectID]bool)
			for _, dep := range spec.Deps() {
				if !seen[dep] && !l.cfg.Store.Contains(dep) {
					seen[dep] = true
					absent = append(absent, dep)
				}
			}
			if len(absent) > 0 {
				sp := l.cfg.Tracer.Begin("prefetch", "scheduler.prefetch")
				sp.Task = spec.ID.Hex()
				sp.Trace = spec.TraceID
				sp.Detail = fmt.Sprintf("%d deps", len(absent))
				pf.Prefetch(absent)
				sp.End()
			}
		}
	}
	// Borrow the dependencies for the lifetime of this enqueue: the matching
	// release happens at the end of runTask. A task re-enqueued from
	// runTask's evicted-args path borrows again before that release fires,
	// so the count never dips to zero while the task is anywhere in the
	// pipeline. The borrows flush BEFORE the QUEUED stamp below: the stamp
	// is what lets a previous holder's spill bridge drop its borrow, so this
	// node's share must already be in the control plane's count — and one
	// batched flush covers the whole dependency set, which is why parking
	// cost stays flat in the number of dependencies.
	if l.cfg.Refs != nil {
		if deps := spec.Deps(); len(deps) > 0 {
			l.cfg.Refs.Retain(deps...)
			l.cfg.Refs.Flush()
		}
	}
	// Stamp this node as the task's current holder. If this node dies with
	// the task still queued, the task table points at a dead node and the
	// owner-death transfer (or any consumer's reconstruction check) will
	// re-own the task (R6); without the stamp, a task queued-but-not-
	// dispatched on a dead node would be invisible. With a ledger the
	// stamp is an in-process append that rides the next batched flush.
	if l.cfg.Ledger != nil {
		l.cfg.Ledger.Transition(spec.ID, types.TaskQueued, types.NilWorkerID, "")
	} else {
		l.cfg.Ctrl.SetTaskStatus(spec.ID, types.TaskQueued, l.cfg.Node, types.NilWorkerID, "")
	}
	missing := make(map[types.ObjectID]bool)
	var missingList []types.ObjectID
	for _, dep := range spec.Deps() {
		if !missing[dep] && !l.cfg.Store.Contains(dep) {
			missing[dep] = true
			missingList = append(missingList, dep)
		}
	}
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		// The task will never run here; return its fresh borrows.
		if l.cfg.Refs != nil {
			l.cfg.Refs.Release(spec.Deps()...)
		}
		return
	}
	if len(missing) == 0 {
		l.runnable = append(l.runnable, &queuedTask{spec: spec, enqueuedAt: time.Now()})
		l.mu.Unlock()
		l.kickDispatch()
		return
	}
	w := &waitingTask{spec: spec, missing: missing, cancel: make(chan struct{})}
	l.waiting[spec.ID] = w
	l.mu.Unlock()
	// Spawn resolvers from the snapshot slice, not the map: once the
	// waiting entry is published, resolvers may delete from the map
	// concurrently (depSatisfied holds the lock; this loop does not).
	for _, dep := range missingList {
		l.wg.Add(1)
		go l.resolveDep(spec.ID, dep, w.cancel)
	}
}

// resolveDep drives one missing dependency to local residency: wait for it
// to become ready (pub/sub with a poll safety net), fetch it from a peer,
// or request reconstruction if it was lost.
func (l *Local) resolveDep(task types.TaskID, obj types.ObjectID, cancel <-chan struct{}) {
	defer l.wg.Done()
	sub := l.cfg.Ctrl.SubscribeObjectReady(obj)
	defer sub.Close()
	// Stranded-producer checks are throttled: they exist to detect the rare
	// case of a producer dying with the task still queued, so probing every
	// ~25 wakeups (~0.5s at the default poll interval) detects failures
	// promptly without taxing the control plane on healthy pending-heavy
	// graphs.
	const strandedCheckPeriod = 25
	wakeups := 0
	for {
		if l.cfg.Store.Contains(obj) {
			l.depSatisfied(task, obj)
			return
		}
		if info, ok := l.cfg.Ctrl.GetObject(obj); ok {
			switch info.State {
			case types.ObjectReady:
				if l.cfg.Fetcher != nil && len(info.Locations) > 0 {
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					err := l.cfg.Fetcher.Fetch(ctx, obj, info.Locations)
					cancel()
					if err == nil {
						continue
					}
				}
			case types.ObjectLost:
				if l.cfg.Recon != nil {
					l.cfg.Recon(obj)
				}
			case types.ObjectPending:
				// Possibly a producer stranded on a dead node (queued or
				// running there when it died). The reconstructor no-ops for
				// healthy producers.
				if l.cfg.Recon != nil && wakeups%strandedCheckPeriod == 0 {
					l.cfg.Recon(obj)
				}
			}
		}
		wakeups++
		localArrival := l.cfg.Store.WaitChan(obj)
		select {
		case <-localArrival:
		case <-sub.C():
		case <-time.After(l.cfg.DepPollInterval):
		case <-cancel:
			return // task evicted from waiting (group release)
		case <-l.stop:
			return
		}
	}
}

// depSatisfied clears one dependency; the task becomes runnable when its
// missing set empties.
func (l *Local) depSatisfied(task types.TaskID, obj types.ObjectID) {
	l.mu.Lock()
	w, ok := l.waiting[task]
	if !ok {
		l.mu.Unlock()
		return
	}
	delete(w.missing, obj)
	// One wake clears every dependency that has already landed, not just
	// its own: under a busy runqueue the per-dependency resolver goroutines
	// each wait for a timeslice, so clearing strictly one-per-wake makes
	// the park→scheduled edge grow linearly in dependency count even when
	// all the objects are long since local. The sweep costs one local
	// store lookup per still-missing dep; the bypassed resolvers find
	// their object present on their next wake and exit.
	for dep := range w.missing {
		if l.cfg.Store.Contains(dep) {
			delete(w.missing, dep)
		}
	}
	if len(w.missing) > 0 {
		l.mu.Unlock()
		return
	}
	delete(l.waiting, task)
	l.runnable = append(l.runnable, &queuedTask{spec: w.spec, enqueuedAt: time.Now()})
	l.mu.Unlock()
	l.kickDispatch()
}

func (l *Local) kickDispatch() {
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// dispatchLoop admits runnable tasks whenever resources allow. Admission
// scans past a head-of-line task whose demand does not currently fit, so a
// large task cannot starve small ones (R4 heterogeneity).
func (l *Local) dispatchLoop() {
	defer l.wg.Done()
	for {
		l.dispatchReady()
		select {
		case <-l.kick:
		case <-l.stop:
			return
		}
	}
}

func (l *Local) dispatchReady() {
	for {
		task, strays, ok := l.admitOne()
		// Grouped tasks whose reservation left this node respill outside
		// the lock: the gang pass re-places their group as a unit and the
		// global scheduler routes them to the new holder.
		for _, spec := range strays {
			l.respillGrouped(spec)
			if l.cfg.Refs != nil {
				l.cfg.Refs.Release(spec.Deps()...)
			}
		}
		if !ok {
			return
		}
		// For placement-group members, dispatch is a claim: the
		// QUEUED→SCHEDULED CAS loses exactly when a FailTask buried the
		// task while it sat runnable (group removal racing placement), and
		// running it anyway would produce a second, conflicting set of
		// bytes under return IDs that already hold error payloads. The
		// loser drops its copy and settles its books. Either branch costs
		// one control-plane write on this serial hot path: the CAS already
		// stamps status and timestamps, and the holder node was stamped at
		// enqueue, so no follow-up write is needed; non-grouped tasks have
		// no competing QUEUED-state claimant and keep the plain stamp.
		if task.spec.InGroup() {
			if !l.cfg.Ctrl.CASTaskStatus(task.spec.ID, []types.TaskStatus{types.TaskQueued}, types.TaskScheduled) {
				l.releaseHeld(task.spec)
				if l.cfg.Refs != nil {
					l.cfg.Refs.Release(task.spec.Deps()...)
				}
				if l.cfg.Ledger != nil {
					l.cfg.Ledger.Disown(task.spec.ID) // buried by FailTask: dead tenure
				}
				continue
			}
			// The CAS stamped the table; mirror it into the ledger so the
			// next flush's full-state delta carries SCHEDULED, not a stale
			// QUEUED that would regress the follower.
			if l.cfg.Ledger != nil {
				l.cfg.Ledger.Transition(task.spec.ID, types.TaskScheduled, types.NilWorkerID, "")
			}
		} else if l.cfg.Ledger != nil {
			// Serial hot path: the SCHEDULED stamp is an in-process ledger
			// append instead of a synchronous control-plane write.
			l.cfg.Ledger.Transition(task.spec.ID, types.TaskScheduled, types.NilWorkerID, "")
		} else {
			l.cfg.Ctrl.SetTaskStatus(task.spec.ID, types.TaskScheduled, l.cfg.Node, types.NilWorkerID, "")
		}
		l.dispatched.Add(1)
		l.obs.dispatched.Inc()
		l.obs.dispatchNs.Observe(time.Since(task.enqueuedAt).Nanoseconds())
		l.wg.Add(1)
		go l.runTask(task.spec)
	}
}

// admitOne pops the first runnable task whose resources are available —
// from its bundle's reservation pool for placement-group members, from the
// general pool otherwise. Grouped tasks stranded without a reservation are
// returned separately for respilling.
func (l *Local) admitOne() (admitted *queuedTask, strays []types.TaskSpec, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.runnable[:0]
	for _, t := range l.runnable {
		if t.spec.InGroup() {
			if _, held := l.bundles[bundleKey{group: t.spec.Group, bundle: t.spec.Bundle}]; !held {
				strays = append(strays, t.spec)
				continue
			}
		}
		kept = append(kept, t)
	}
	l.runnable = kept
	for i, t := range l.runnable {
		pool := l.res
		if t.spec.InGroup() {
			pool = l.bundles[bundleKey{group: t.spec.Group, bundle: t.spec.Bundle}]
		}
		if pool.tryAcquire(t.spec.Resources) {
			l.runnable = append(l.runnable[:i], l.runnable[i+1:]...)
			l.holding[t.spec.ID] = pool
			return t, strays, true
		}
	}
	return nil, strays, false
}

// releaseHeld returns a task's resources to the exact pool instance it
// acquired (or last reacquired) them from, clearing the binding.
func (l *Local) releaseHeld(spec types.TaskSpec) {
	l.mu.Lock()
	pool := l.holding[spec.ID]
	delete(l.holding, spec.ID)
	l.mu.Unlock()
	if pool == nil {
		pool = l.poolFor(spec) // defensive: unbound release
	}
	pool.release(spec.Resources)
}

// bindHeld records the pool a task just (re)acquired resources from.
func (l *Local) bindHeld(id types.TaskID, pool *resourcePool) {
	l.mu.Lock()
	l.holding[id] = pool
	l.mu.Unlock()
}

// runTask resolves argument bytes and executes. Dependencies were local at
// enqueue time but may have been evicted since; in that case the task goes
// back to waiting.
func (l *Local) runTask(spec types.TaskSpec) {
	defer l.wg.Done()
	defer l.kickDispatch()
	// Return the enqueue-time borrows last (LIFO): the evicted-args path
	// below re-enqueues — and re-borrows — before this defer runs.
	if l.cfg.Refs != nil {
		defer l.cfg.Refs.Release(spec.Deps()...)
	}
	args, missing := l.gatherArgs(spec)
	if missing {
		l.releaseHeld(spec)
		l.enqueue(spec)
		return
	}
	defer l.releaseHeld(spec)
	defer l.unpinArgs(spec)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-l.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	l.cfg.Exec(ctx, spec, args)
}

// gatherArgs pins and reads reference arguments from the local store.
func (l *Local) gatherArgs(spec types.TaskSpec) ([][]byte, bool) {
	args := make([][]byte, len(spec.Args))
	for i, a := range spec.Args {
		if !a.IsRef {
			args[i] = a.Value
			continue
		}
		l.cfg.Store.Pin(a.Ref)
		data, ok := l.cfg.Store.Get(a.Ref)
		if !ok {
			// Evicted between readiness and admission; retry via waiting.
			for j := 0; j <= i; j++ {
				if spec.Args[j].IsRef {
					l.cfg.Store.Unpin(spec.Args[j].Ref)
				}
			}
			return nil, true
		}
		args[i] = data
	}
	return args, false
}

// unpinArgs releases the pins taken by gatherArgs once execution ends.
func (l *Local) unpinArgs(spec types.TaskSpec) {
	for _, a := range spec.Args {
		if a.IsRef {
			l.cfg.Store.Unpin(a.Ref)
		}
	}
}
