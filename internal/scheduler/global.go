package scheduler

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gcs"
	"repro/internal/jobs"
	"repro/internal/types"
)

// AssignFunc delivers a placement decision to a node's local scheduler
// (an RPC in distributed mode, a direct call in in-process clusters).
type AssignFunc func(node types.NodeID, addr string, spec types.TaskSpec) error

// GlobalConfig configures a Global scheduler.
type GlobalConfig struct {
	Ctrl   gcs.API
	Assign AssignFunc
	Policy Policy
	// Reserve, ReleaseGroup, and FailTask wire the gang-scheduling pass to
	// the nodes (see gang.go). Leaving Reserve nil disables the pass.
	Reserve      ReserveFunc
	ReleaseGroup GroupReleaseFunc
	FailTask     FailFunc
	// RetryInterval bounds how long an unplaceable task parks before the
	// next placement attempt. Zero selects a default.
	RetryInterval time.Duration
	// SweepInterval is how often the pending-task sweep scans the task
	// table for stale unclaimed PENDING tasks — spilled tasks whose
	// pub/sub publish was dropped (e.g. by a control-plane shard crash
	// between accepting the publish and delivering it). The task record
	// itself is durable, so the sweep is the at-least-once fallback under
	// the at-most-once spill channel. Zero selects a default; negative
	// disables the sweep.
	SweepInterval time.Duration
	// SweepAge is how long a task may sit in PENDING before the sweep
	// considers it unclaimed. Zero selects a default.
	SweepAge time.Duration
	// JobGrace is how long a Stopped job's task and object records linger
	// before the reclaim pass tombstones them (DESIGN.md §14) — the window
	// in which dashboards and stragglers can still observe the corpse.
	// Zero selects a default; negative disables purging (records linger
	// until an operator intervenes).
	JobGrace time.Duration
}

// Global is the cluster-level half of hybrid scheduling: it subscribes to
// the spillover channel and places tasks using global information — node
// liveness, resource feasibility, heartbeat load, and object locality.
// Tasks with no feasible node park until cluster membership or load
// changes. Multiple Global instances may run; the spill channel fans out
// and deterministic task IDs make duplicate placements converge.
type Global struct {
	cfg  GlobalConfig
	stop chan struct{}
	wg   sync.WaitGroup

	mu     sync.Mutex
	parked map[types.TaskID]types.TaskSpec // keyed to dedup re-parks
	// reapedGroups remembers removed groups already reaped by this
	// scheduler (reaping is idempotent; the set only saves repeat RPCs).
	reapedGroups map[types.PlacementGroupID]bool
	// gangIdle latches "no placement groups exist" after a scan so idle
	// retry ticks skip the group-table fan-out; cleared by group events
	// and re-checked every gangIdleResync.
	gangIdle    bool
	gangScanned time.Time
	// groupCache is the last gang pass's scan, reused (while fresh) for
	// member-task routing so a gang of K parked members costs one table
	// scan instead of K record lookups.
	groupCache map[types.PlacementGroupID]types.PlacementGroupInfo
	// probeAt rate-limits the per-group Placed reservation repair probe.
	probeAt map[types.PlacementGroupID]time.Time
	// releaseRetry queues (group, node) release RPCs that failed
	// transiently, so rollbacks never strand a reservation (value:
	// the release's removed flag).
	releaseRetry map[releaseKey]bool
	// nodeCache is the last node-table scan, reused while fresh for
	// placement candidate building — a spill burst of K tasks costs one
	// table scan instead of K×N full-record decodes. Invalidated by
	// membership events; the short TTL bounds heartbeat staleness, which
	// placement already tolerates (load fields are heartbeat-stale by
	// construction).
	nodeCache   []types.NodeInfo
	nodeScanned time.Time
	// refSwept remembers dead nodes whose refcount shares have been swept
	// from the object table (DESIGN.md §12). A node stays unswept — and is
	// retried by every membership event and sweep tick — until the
	// idempotent sweep reports it covered the whole table.
	refSwept map[types.NodeID]bool
	// ownerSwept remembers dead nodes whose live owned tasks have been
	// transferred to successor owners (DESIGN.md §13). Like refSwept, a
	// node stays unswept until a transfer pass sees a complete follower-
	// table view (every shard reachable) — re-owning from a partial scan
	// could strand the tasks on the unreachable shard forever.
	ownerSwept map[types.NodeID]bool
	// jobCache mirrors the job table (fed by job events, healed by lazy
	// GetJob) for fair-share weights and the terminated-job dispatch fence.
	jobCache map[types.JobID]types.JobInfo

	// fair orders spilled tasks for dispatch by weighted fair share
	// (DESIGN.md §14). Owned exclusively by the run goroutine.
	fair *jobs.FairQueue
	// fairDebits tracks, per node, the NowNs timestamps of fair-queue
	// dispatches not yet reflected in that node's heartbeat (entries at or
	// before the node's LastSeen are pruned — the heartbeat's QueueLen has
	// absorbed them). It makes the dispatch gate's view of node backlog
	// self-correcting without a task-event feed. Run-goroutine owned.
	fairDebits map[types.NodeID][]int64

	spillSub gcs.Sub
	nodeSub  gcs.Sub
	groupSub gcs.Sub
	jobSub   gcs.Sub

	placed     atomic.Int64
	parkedCt   atomic.Int64
	gangPlaced atomic.Int64
	gangParked atomic.Int64
}

// NewGlobal builds a global scheduler; call Start to begin placing.
func NewGlobal(cfg GlobalConfig) *Global {
	if cfg.Policy == nil {
		cfg.Policy = LocalityPolicy{}
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 50 * time.Millisecond
	}
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = 500 * time.Millisecond
	}
	if cfg.SweepAge <= 0 {
		cfg.SweepAge = 500 * time.Millisecond
	}
	if cfg.JobGrace == 0 {
		cfg.JobGrace = 500 * time.Millisecond
	}
	g := &Global{
		cfg:          cfg,
		stop:         make(chan struct{}),
		reapedGroups: make(map[types.PlacementGroupID]bool),
		probeAt:      make(map[types.PlacementGroupID]time.Time),
		releaseRetry: make(map[releaseKey]bool),
		refSwept:     make(map[types.NodeID]bool),
		ownerSwept:   make(map[types.NodeID]bool),
		jobCache:     make(map[types.JobID]types.JobInfo),
		fairDebits:   make(map[types.NodeID][]int64),
	}
	g.fair = jobs.NewFairQueue(g.jobWeight)
	return g
}

// Start launches the placement loop. Subscriptions are established before
// Start returns, so no spill published after Start can be missed.
func (g *Global) Start() {
	g.spillSub = g.cfg.Ctrl.SubscribeSpill()
	g.nodeSub = g.cfg.Ctrl.SubscribeNodeEvents()
	g.groupSub = g.cfg.Ctrl.SubscribePlacementGroups()
	g.jobSub = g.cfg.Ctrl.SubscribeJobs()
	g.wg.Add(1)
	go g.run()
}

// Stop halts placement.
func (g *Global) Stop() {
	select {
	case <-g.stop:
		return
	default:
	}
	close(g.stop)
	g.wg.Wait()
}

// Placed returns the cumulative count of successful placements.
func (g *Global) Placed() int64 { return g.placed.Load() }

// Parked returns how many placement attempts found no feasible node.
func (g *Global) Parked() int64 { return g.parkedCt.Load() }

// GangPlaced returns how many placement groups this scheduler committed.
func (g *Global) GangPlaced() int64 { return g.gangPlaced.Load() }

// GangParked returns how many gang passes found a group infeasible.
func (g *Global) GangParked() int64 { return g.gangParked.Load() }

func (g *Global) run() {
	defer g.wg.Done()
	spillSub := g.spillSub
	defer spillSub.Close()
	nodeSub := g.nodeSub
	defer nodeSub.Close()
	groupSub := g.groupSub
	defer groupSub.Close()
	jobSub := g.jobSub
	defer jobSub.Close()
	retry := time.NewTicker(g.cfg.RetryInterval)
	defer retry.Stop()
	// The pace tick re-runs gated fair dispatch as heartbeats absorb
	// earlier placements. It exists because backlog held by the contention
	// gate has no event to wake on — task completions publish per-task
	// channels only — and the retry tick is too coarse to keep a contended
	// cluster saturated. A no-op (one int compare) whenever nothing is held.
	pace := time.NewTicker(5 * time.Millisecond)
	defer pace.Stop()
	var sweep <-chan time.Time
	if g.cfg.SweepInterval > 0 {
		t := time.NewTicker(g.cfg.SweepInterval)
		defer t.Stop()
		sweep = t.C
	}

	// Receive through local variables so a closed subscription disables
	// its case (nil channel) instead of becoming permanently ready — a
	// dead control plane must degrade to the retry tick, not a hot spin
	// or an exit. The spill feed in particular has a durable fallback
	// (the pending-task sweep), so losing the subscription must not kill
	// the scheduler: the sweep, retry tick, and gang maintenance all keep
	// running, and reservation-release retries are never stranded.
	spillC, nodeC, groupC, jobC := spillSub.C(), nodeSub.C(), groupSub.C(), jobSub.C()
	for {
		select {
		case raw, ok := <-spillC:
			if !ok {
				spillC = nil
				continue
			}
			spec, err := gcs.DecodeSpillSpec(raw)
			if err != nil {
				continue
			}
			// Route through the fair queue: gather whatever else the burst
			// already delivered so DRR has a window to order it, then drain.
			// An uncontended spill degenerates to push-pop-place.
			g.fair.Push(spec)
			g.gatherSpill(spillC)
			g.dispatchFair()
		case raw, ok := <-jobC:
			if !ok {
				jobC = nil
				continue
			}
			if info, err := gcs.DecodeJobEvent(raw); err == nil {
				g.observeJob(info)
				if info.State != types.JobRunning {
					g.jobPass() // a stop event: start reclaiming immediately
				}
			}
		case _, ok := <-nodeC:
			if !ok {
				nodeC = nil
				continue
			}
			drain(nodeC) // coalesce membership bursts into one pass
			g.mu.Lock()
			g.nodeCache = nil // membership changed: never place off a stale view
			g.mu.Unlock()
			g.sweepDeadOwners()
			g.gangPass(true) // membership changed: place/roll back groups first
			g.retryParked()
		case _, ok := <-groupC:
			if !ok {
				groupC = nil
				continue
			}
			// One placement publishes several transitions (create, claim,
			// commit) from every group; reconcile the burst once instead of
			// paying a table fan-out per event.
			drain(groupC)
			g.gangPass(true)
			g.retryParked() // parked member tasks may be routable now
		case <-pace.C:
			if g.fair.Len() > 0 {
				g.dispatchFair()
			}
		case <-retry.C:
			g.gangPass(false)
			g.retryParked()
		case <-sweep:
			g.sweepPending()
			g.sweepDeadOwners()
			g.jobPass() // at-least-once fallback for dropped job events
		case <-g.stop:
			return
		}
	}
}

// sweepPending rescues spilled tasks whose spill publish was lost: a task
// durably recorded PENDING but claimed by nobody for longer than SweepAge
// is re-placed. The control plane filters server-side (per shard, on its
// own clock, aged from the task's latest transition so a retry's reset to
// PENDING gets its full grace period), and placement delivers through
// Submit(placed=true), whose PENDING→QUEUED CAS claim makes duplicate
// rescues (several globals, or a rescue racing the original publish)
// converge on one owner.
func (g *Global) sweepPending() {
	parked := g.parkedIDs()
	for _, spec := range g.cfg.Ctrl.StalePendingTasks(g.cfg.SweepAge.Nanoseconds()) {
		if parked[spec.ID] {
			continue
		}
		if g.fair.Contains(spec.ID) {
			// Held by the fair queue's contention gate, not lost: rescuing
			// it here would bypass the DRR ordering the gate exists for.
			// (Safe against this scheduler dying with it: a peer global's
			// sweep does not hold it and will rescue.)
			continue
		}
		g.place(spec)
	}
}

// sweepDeadOwners reconciles refcount shares owned by dead nodes: a node
// that crashed with unflushed releases leaves its flushed retains in the
// object table forever, so the control plane subtracts every share
// attributed to it (SweepDeadNodeRefs), publishing GC for objects only the
// dead node kept alive. The sweep is idempotent and retried until it
// reports full coverage (a shard mid-failover returns a negative count),
// so a node is marked swept exactly once the whole table has been walked.
func (g *Global) sweepDeadOwners() {
	for _, n := range g.cfg.Ctrl.Nodes() {
		if n.Alive {
			continue
		}
		g.mu.Lock()
		done := g.refSwept[n.ID]
		g.mu.Unlock()
		if !done && g.cfg.Ctrl.SweepDeadNodeRefs(n.ID) >= 0 {
			g.mu.Lock()
			g.refSwept[n.ID] = true
			g.mu.Unlock()
		}
		g.transferDeadOwner(n.ID)
	}
}

// transferDeadOwner is the owner-death transfer protocol (DESIGN.md §13):
// a node that dies owning live tasks leaves their authoritative state in a
// ledger that no longer exists — the follower table holds whatever the
// owner last flushed. The transfer reads the dead owner's live tasks from
// the follower, releases each tenure with a CAS back into the unowned
// PENDING pool (which bumps the fence sequence, so any straggler delta
// from the dead tenure is consumed), and re-places the task; the
// destination's PENDING→QUEUED claim opens the successor tenure. The CAS
// also makes concurrent transfers from several global schedulers converge:
// exactly one wins each release, and a task that moved on by itself
// (terminal, or re-owned via a consumer's steal) loses the CAS and is
// skipped. The owner is marked transferred only after a complete scan
// processed cleanly; an unreachable shard retries on the next tick.
func (g *Global) transferDeadOwner(owner types.NodeID) {
	g.mu.Lock()
	done := g.ownerSwept[owner]
	g.mu.Unlock()
	if done {
		return
	}
	tasks, complete := g.cfg.Ctrl.LiveTasksOwnedBy(owner)
	for _, st := range tasks {
		if !g.cfg.Ctrl.CASTaskStatus(st.Spec.ID,
			[]types.TaskStatus{types.TaskPending, types.TaskQueued, types.TaskScheduled, types.TaskRunning},
			types.TaskPending) {
			continue // moved on by itself: terminal or already re-owned
		}
		g.cfg.Ctrl.LogEvent(types.Event{Kind: "owner-transfer", Task: st.Spec.ID, Node: owner,
			Detail: fmt.Sprintf("from %s", st.Status)})
		g.place(st.Spec)
	}
	if complete {
		g.mu.Lock()
		g.ownerSwept[owner] = true
		g.mu.Unlock()
	}
}

func (g *Global) retryParked() {
	g.mu.Lock()
	pending := g.parked
	g.parked = nil
	g.mu.Unlock()
	for _, spec := range pending {
		g.place(spec)
	}
}

// parkedIDs snapshots the parked set (used by the sweep to skip tasks it
// is already responsible for).
func (g *Global) parkedIDs() map[types.TaskID]bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[types.TaskID]bool, len(g.parked))
	for id := range g.parked {
		out[id] = true
	}
	return out
}

// place runs one placement: filter to feasible candidates, score locality,
// delegate the choice to the policy, and assign. Placement-group members
// bypass the policy — their node is the one holding their bundle.
// place routes one spec: policy pick, assignment, park on failure. It
// returns the node the task was assigned to (NilNodeID when the task was
// parked, fenced, or routed through the gang path) so the fair-dispatch
// gate can debit the node's headroom before the next heartbeat reports it.
func (g *Global) place(spec types.TaskSpec) types.NodeID {
	if g.jobTerminated(spec.Job) {
		// Fenced: the job is stopping or stopped. The reclaim pass buries
		// the durable record with a typed failure; placing it would
		// resurrect work the tenant already gave up on.
		return types.NilNodeID
	}
	if spec.InGroup() {
		if g.cfg.Reserve == nil {
			// Gang scheduling is not wired: no node will ever hold the
			// bundle reservation, so normal placement would ping-pong the
			// task through the stray-respill path forever. Park it — inert,
			// and correct if a gang-wired scheduler joins later.
			g.park(spec)
			return types.NilNodeID
		}
		g.placeGrouped(spec)
		return types.NilNodeID
	}
	candidates := g.candidates(spec)
	// The soft locality hint is resolved here, before the policy, so its
	// contract ("preferred when alive and feasible") holds under every
	// policy — not just the ones that read NodeSnapshot.Preferred.
	id, ok := types.NilNodeID, false
	for _, c := range candidates {
		if c.Preferred {
			id, ok = c.Info.ID, true
			break
		}
	}
	if !ok {
		id, ok = g.cfg.Policy.Pick(spec, candidates)
	}
	if !ok {
		g.park(spec)
		return types.NilNodeID
	}
	var addr string
	for _, c := range candidates {
		if c.Info.ID == id {
			addr = c.Info.Addr
			break
		}
	}
	if err := g.cfg.Assign(id, addr, spec); err != nil {
		// The node likely died between heartbeat and assignment; park and
		// let the retry pass pick a different one.
		g.park(spec)
		return types.NilNodeID
	}
	g.placed.Add(1)
	g.cfg.Ctrl.LogEvent(types.Event{Kind: "global-place", Task: spec.ID, Node: id, Detail: g.cfg.Policy.Name()})
	return id
}

// drain empties whatever is already queued on a subscription channel so a
// burst of events collapses into one reconciliation pass. It stops on a
// closed channel (receives from one are always ready — an unbounded loop
// would spin forever, e.g. on a subscription torn down by a dead control
// plane) and bounds the sweep so a high-rate publisher cannot hold the
// loop hostage.
func drain(c <-chan []byte) {
	for i := 0; i < 64; i++ {
		select {
		case _, ok := <-c:
			if !ok {
				return
			}
		default:
			return
		}
	}
}

func (g *Global) park(spec types.TaskSpec) {
	g.parkedCt.Add(1)
	g.mu.Lock()
	if g.parked == nil {
		g.parked = make(map[types.TaskID]types.TaskSpec)
	}
	g.parked[spec.ID] = spec
	g.mu.Unlock()
}

// candidates returns schedulable nodes (alive, not draining) whose total
// capacity can ever satisfy the task, with locality bytes computed from
// the object table. Draining nodes are fenced out here so no new placement
// lands on a node that is shedding its state; their refusal (ErrDraining)
// is only the backstop for assignments already in flight.
// nodeCacheTTL bounds how stale a cached node-table scan may serve
// placement; it is well under any heartbeat interval, so cached load
// fields are no staler than the table's own.
const nodeCacheTTL = 5 * time.Millisecond

// nodes returns the node table, served from the placement cache while
// fresh. Membership events invalidate it immediately (see run), so a
// death verdict is never masked for a TTL.
func (g *Global) nodes() []types.NodeInfo {
	g.mu.Lock()
	if g.nodeCache != nil && time.Since(g.nodeScanned) < nodeCacheTTL {
		nodes := g.nodeCache
		g.mu.Unlock()
		return nodes
	}
	g.mu.Unlock()
	nodes := g.cfg.Ctrl.Nodes()
	g.mu.Lock()
	g.nodeCache, g.nodeScanned = nodes, time.Now()
	g.mu.Unlock()
	return nodes
}

func (g *Global) candidates(spec types.TaskSpec) []NodeSnapshot {
	nodes := g.nodes()
	deps := spec.Deps()
	out := make([]NodeSnapshot, 0, len(nodes))
	for _, n := range nodes {
		if !n.Schedulable() || !spec.Resources.FeasibleOn(n.Total) {
			continue
		}
		snap := NodeSnapshot{Info: n, Preferred: n.ID == spec.Locality}
		for _, dep := range deps {
			if info, ok := g.cfg.Ctrl.GetObject(dep); ok && info.State == types.ObjectReady && info.HasLocation(n.ID) {
				if info.IsSpilledOn(n.ID) {
					snap.SpilledBytes += info.Size
				} else {
					snap.LocalityBytes += info.Size
				}
			}
		}
		out = append(out, snap)
	}
	return out
}
