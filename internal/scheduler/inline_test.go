package scheduler

import (
	"context"
	"testing"
	"time"

	"repro/internal/gcs"
	"repro/internal/objectstore"
	"repro/internal/types"
)

// buildInlineLocal is buildLocal with the inline fast path enabled. The
// same execLog backs Exec and ExecInline, so tests distinguish the paths
// only through Inlined() — exactly the observability contract DESIGN.md
// §15 promises (mode visible in counters, never in results).
func buildInlineLocal(t *testing.T, fence func() bool) (*Local, *execLog, *gcs.Store, *objectstore.Store) {
	t.Helper()
	ctrl := gcs.NewStore(4)
	nid := tNode(2)
	ctrl.RegisterNode(types.NodeInfo{ID: nid, Addr: "x", Total: types.CPU(2)})
	store := objectstore.New(nid, ctrl, 0)
	log := newExecLog()
	l := NewLocal(LocalConfig{
		Node:            nid,
		Total:           types.CPU(2),
		Ctrl:            ctrl,
		Store:           store,
		SpillThreshold:  SpillNever,
		DepPollInterval: 5 * time.Millisecond,
		InlineDispatch:  true,
		InlineFence:     fence,
	})
	l.SetExec(log.exec(ctrl, nid, store))
	l.SetExecInline(log.exec(ctrl, nid, store))
	l.Start()
	t.Cleanup(l.Stop)
	return l, log, ctrl, store
}

// TestInlineDispatchSynchronous: an eligible tiny task runs to completion
// on the submitting goroutine — by the time Submit returns, the task has
// executed, its returns are in the store, and its record is FINISHED.
func TestInlineDispatchSynchronous(t *testing.T) {
	l, log, ctrl, store := buildInlineLocal(t, nil)
	spec := tSpec(1, nil)
	if err := l.Submit(spec, false); err != nil {
		t.Fatal(err)
	}
	log.mu.Lock()
	ran := log.seen[spec.ID]
	log.mu.Unlock()
	if !ran {
		t.Fatal("Submit returned before the inline task executed")
	}
	if l.Inlined() != 1 {
		t.Fatalf("Inlined = %d, want 1", l.Inlined())
	}
	if !store.Contains(spec.ReturnID(0)) {
		t.Fatal("inline task's return object missing")
	}
	if rec, ok := ctrl.GetTask(spec.ID); !ok || rec.Status != types.TaskFinished {
		t.Fatalf("task record = %+v, %v", rec, ok)
	}
	// Resources released: a full pool's worth of follow-ups also inline.
	for i := uint64(2); i < 6; i++ {
		if err := l.Submit(tSpec(i, nil), false); err != nil {
			t.Fatal(err)
		}
	}
	if l.Inlined() != 5 {
		t.Fatalf("Inlined = %d after 5 tiny submits, want 5", l.Inlined())
	}
}

// TestInlineIneligibleFallsBack: every eligibility fence routes the task
// through the ordinary queue — it still executes, but Inlined stays zero.
func TestInlineIneligibleFallsBack(t *testing.T) {
	t.Run("actor", func(t *testing.T) {
		l, log, _, _ := buildInlineLocal(t, nil)
		spec := tSpec(10, nil)
		spec.Actor = true
		if err := l.Submit(spec, false); err != nil {
			t.Fatal(err)
		}
		waitExec(t, log, spec.ID)
		if l.Inlined() != 0 {
			t.Fatal("actor method ran inline")
		}
	})
	t.Run("fence", func(t *testing.T) {
		l, log, _, _ := buildInlineLocal(t, func() bool { return true })
		spec := tSpec(11, nil)
		if err := l.Submit(spec, false); err != nil {
			t.Fatal(err)
		}
		waitExec(t, log, spec.ID)
		if l.Inlined() != 0 {
			t.Fatal("task ran inline with the multi-tenant fence engaged")
		}
	})
	t.Run("depth-cap", func(t *testing.T) {
		l, log, _, _ := buildInlineLocal(t, nil)
		spec := tSpec(12, nil)
		if err := l.SubmitAt(spec, false, inlineDepthCap); err != nil {
			t.Fatal(err)
		}
		waitExec(t, log, spec.ID)
		if l.Inlined() != 0 {
			t.Fatal("task at the depth cap ran inline instead of trampolining")
		}
	})
	t.Run("big-resources", func(t *testing.T) {
		l, log, _, _ := buildInlineLocal(t, nil)
		spec := tSpec(13, types.CPU(2))
		if err := l.Submit(spec, false); err != nil {
			t.Fatal(err)
		}
		waitExec(t, log, spec.ID)
		if l.Inlined() != 0 {
			t.Fatal("multi-unit task ran inline")
		}
	})
	t.Run("unresolved-dep", func(t *testing.T) {
		l, log, ctrl, store := buildInlineLocal(t, nil)
		dep := types.ObjectIDForReturn(types.DeriveTaskID(types.NilTaskID, 778), 0)
		ctrl.EnsureObject(dep, types.DeriveTaskID(types.NilTaskID, 778))
		spec := tSpec(14, nil, dep)
		if err := l.Submit(spec, false); err != nil {
			t.Fatal(err)
		}
		if err := store.Put(dep, []byte("d")); err != nil {
			t.Fatal(err)
		}
		waitExec(t, log, spec.ID)
		if l.Inlined() != 0 {
			t.Fatal("task with an unresolved dep ran inline")
		}
	})
}

// TestInlineDepthThreadsToChildren: a task running inline sees the
// incremented inline depth in its execution context, so submissions it
// makes carry depth+1 and deep chains trampoline at the cap instead of
// recursing the stack without bound.
func TestInlineDepthThreadsToChildren(t *testing.T) {
	ctrl := gcs.NewStore(4)
	nid := tNode(3)
	ctrl.RegisterNode(types.NodeInfo{ID: nid, Addr: "x", Total: types.CPU(2)})
	store := objectstore.New(nid, ctrl, 0)
	l := NewLocal(LocalConfig{
		Node:            nid,
		Total:           types.CPU(2),
		Ctrl:            ctrl,
		Store:           store,
		SpillThreshold:  SpillNever,
		DepPollInterval: 5 * time.Millisecond,
		InlineDispatch:  true,
	})
	depth := -1
	l.SetExec(func(ctx context.Context, spec types.TaskSpec, args [][]byte) {})
	l.SetExecInline(func(ctx context.Context, spec types.TaskSpec, args [][]byte) {
		depth = types.InlineDepthFrom(ctx)
	})
	l.Start()
	t.Cleanup(l.Stop)
	// Inline execution is synchronous: depth is set when SubmitAt returns.
	if err := l.SubmitAt(tSpec(20, nil), false, 3); err != nil {
		t.Fatal(err)
	}
	if depth != 4 {
		t.Fatalf("child-visible inline depth = %d, want submitter depth+1 = 4", depth)
	}
}

// TestGatherArgsUnwindAlias: the same ObjectID appearing in several args
// takes one pin per occurrence, and both the unwind (gather fails midway)
// and unpinArgs release exactly that many — pin counts return to zero, so
// an aliased argument can still be evicted afterwards.
func TestGatherArgsUnwindAlias(t *testing.T) {
	l, _, _, store := buildLocal(t, types.CPU(2), SpillNever)
	a := types.ObjectIDForReturn(types.DeriveTaskID(types.NilTaskID, 800), 0)
	b := types.ObjectIDForReturn(types.DeriveTaskID(types.NilTaskID, 801), 0)
	if err := store.Put(a, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(b, []byte("b")); err != nil {
		t.Fatal(err)
	}
	spec := types.TaskSpec{
		ID:         types.DeriveTaskID(types.NilTaskID, 802),
		Function:   "f",
		NumReturns: 1,
		Resources:  types.CPU(1),
		Args:       []types.Arg{types.RefArg(a), types.RefArg(a), types.RefArg(b)},
	}
	// Success path: per-occurrence pins, fully released by unpinArgs.
	args, missing := l.gatherArgs(spec)
	if missing || len(args) != 3 {
		t.Fatalf("gatherArgs = %d args, missing=%v", len(args), missing)
	}
	if got := store.PinCount(a); got != 2 {
		t.Fatalf("aliased arg pinned %d times, want 2", got)
	}
	if got := store.PinCount(b); got != 1 {
		t.Fatalf("PinCount(b) = %d, want 1", got)
	}
	l.unpinArgs(spec)
	if store.PinCount(a) != 0 || store.PinCount(b) != 0 {
		t.Fatalf("unpinArgs left pins: a=%d b=%d", store.PinCount(a), store.PinCount(b))
	}
	// Failure path: the gather fails at the last arg, after the aliased ref
	// was pinned twice; the unwind must release both of those pins.
	store.Delete(b)
	if _, missing := l.gatherArgs(spec); !missing {
		t.Fatal("gatherArgs succeeded without b resident")
	}
	if got := store.PinCount(a); got != 0 {
		t.Fatalf("unwind left %d pins on the aliased arg", got)
	}
	if got := store.PinCount(b); got != 0 {
		t.Fatalf("unwind left %d pins on the missing arg", got)
	}
}
