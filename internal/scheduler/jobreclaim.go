package scheduler

import (
	"fmt"

	"repro/internal/gcs"
	"repro/internal/types"
)

// Job-aware dispatch and the job reclaim pass (DESIGN.md §14). The global
// scheduler is the natural home for both: it already owns the spill queue
// (so fair-share ordering is a dispatch-order concern, not a new hop) and
// already runs the cluster's reconciliation sweeps (so bulk reclaim is one
// more idempotent pass over durable tables).

// gatherSpill opportunistically decodes whatever spill events are already
// queued into the fair queue, bounded like drain so a high-rate publisher
// cannot hold the loop hostage.
func (g *Global) gatherSpill(c <-chan []byte) {
	for i := 0; i < 64; i++ {
		select {
		case raw, ok := <-c:
			if !ok {
				return
			}
			if spec, err := gcs.DecodeSpillSpec(raw); err != nil {
				continue
			} else {
				g.fair.Push(spec)
			}
		default:
			return
		}
	}
}

// fairDispatchDepth is the per-node backlog ceiling the contended-dispatch
// gate enforces: enough pipeline that a node stays fed across a heartbeat
// interval of queue drain (the gate's view of a node refreshes with its
// heartbeat), small enough that DRR ordering in the fair queue — not FIFO
// ordering in node queues — decides who runs next.
const fairDispatchDepth = 6

// dispatchFair drains the fair queue in DRR order. On a single-tenant
// cluster the queue never holds work — every spec is placed (or parked)
// immediately, so untenanted workloads keep their old behavior. In
// multi-tenant mode — two or more Running jobs known, or two or more jobs
// backlogged right now — dispatch is gated on node headroom: specs are
// released only while some schedulable node's effective backlog (heartbeat
// QueueLen plus dispatches newer than that heartbeat) is under
// fairDispatchDepth, and the rest stay DRR-ordered in the fair queue.
// Holding the backlog here instead of in node-local FIFOs is what makes
// the weights real: a tenant that floods first must not bury a tenant that
// submits second at the bottom of node queues. The pace tick re-runs the
// gate as heartbeats absorb earlier dispatches, so the queue still drains
// (work conservation at pace-tick granularity, exact once contention
// ends).
func (g *Global) dispatchFair() {
	gated := g.fair.Jobs() >= 2 || g.runningJobs() >= 2
	for {
		if g.fair.Len() == 0 {
			return
		}
		if gated && !g.fairHeadroom() {
			return
		}
		spec, ok := g.fair.Pop()
		if !ok {
			return
		}
		if node := g.place(spec); !node.IsNil() {
			g.fairDebits[node] = append(g.fairDebits[node], g.cfg.Ctrl.NowNs())
		}
	}
}

// runningJobs counts Running job records in the cache — the multi-tenancy
// signal that keeps the dispatch gate engaged even while only one tenant
// happens to be backlogged (the other may submit any moment and must not
// land behind a flood in node FIFOs).
func (g *Global) runningJobs() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, j := range g.jobCache {
		if j.State == types.JobRunning {
			n++
		}
	}
	return n
}

// fairHeadroom reports whether any schedulable node can absorb another
// fair dispatch, pruning debits that the node's latest heartbeat has
// already folded into its reported QueueLen (and dropping bookkeeping for
// nodes no longer in the table).
func (g *Global) fairHeadroom() bool {
	nodes := g.schedulableNodes()
	seen := make(map[types.NodeID]bool, len(nodes))
	open := false
	for _, n := range nodes {
		seen[n.ID] = true
		pending := g.fairDebits[n.ID][:0]
		for _, ts := range g.fairDebits[n.ID] {
			if ts > n.LastSeen {
				pending = append(pending, ts)
			}
		}
		if len(pending) == 0 {
			delete(g.fairDebits, n.ID)
		} else {
			g.fairDebits[n.ID] = pending
		}
		if n.QueueLen+len(pending) < fairDispatchDepth {
			open = true
		}
	}
	for id := range g.fairDebits {
		if !seen[id] {
			delete(g.fairDebits, id)
		}
	}
	return open
}

// jobWeight resolves a job's fair-share weight from the cache, healing a
// miss with one record fetch. Unknown jobs weigh 1 so their tasks drain
// rather than starve.
func (g *Global) jobWeight(id types.JobID) int {
	if id.IsNil() {
		return 1
	}
	g.mu.Lock()
	info, ok := g.jobCache[id]
	g.mu.Unlock()
	if !ok {
		fetched, found := g.cfg.Ctrl.GetJob(id)
		if !found {
			return 1
		}
		g.observeJob(fetched)
		info = fetched
	}
	return info.Spec.FairWeight()
}

// observeJob folds a job event (or fetched record) into the cache.
func (g *Global) observeJob(info types.JobInfo) {
	g.mu.Lock()
	g.jobCache[info.Spec.ID] = info
	g.mu.Unlock()
}

// jobTerminated reports whether the task's job is stopping or stopped —
// the dispatch fence that keeps reclaim from racing placement. Cache
// misses heal with one record fetch; a job with no record is NOT treated
// as terminated (forgiving reads: a dead control-plane shard must not
// silently drop every tenant's dispatches).
func (g *Global) jobTerminated(id types.JobID) bool {
	if id.IsNil() {
		return false
	}
	g.mu.Lock()
	info, ok := g.jobCache[id]
	g.mu.Unlock()
	if !ok {
		fetched, found := g.cfg.Ctrl.GetJob(id)
		if !found {
			return false
		}
		g.observeJob(fetched)
		info = fetched
	}
	return info.State != types.JobRunning
}

// ctrlComplete reports whether reads against the control plane currently
// see every shard — the same gate the chaos invariants use. Declaring a
// job drained (or purging its records) off a partial view could strand or
// resurrect state on the unreachable shard.
func (g *Global) ctrlComplete() bool {
	if p, ok := g.cfg.Ctrl.(gcs.Pinger); ok {
		return p.Ping()
	}
	return true
}

// jobPass reconciles every job record: Stopping jobs advance through the
// reclaim pipeline, Stopped-but-unpurged jobs are tombstoned once their
// grace period lapses. Runs on job events and the sweep tick, and is
// idempotent — every step re-derives its inputs from durable tables, so a
// crash (or shard failover) mid-pass is retried by the next one.
func (g *Global) jobPass() {
	for _, j := range g.cfg.Ctrl.Jobs() {
		g.observeJob(j)
		switch {
		case j.State == types.JobStopping:
			g.reclaimJob(j)
		case j.State == types.JobStopped && j.PurgedNs == 0:
			g.purgeJob(j)
		}
	}
}

// reclaimJob advances one Stopping job: drop its undispatched backlog,
// fail its live tasks (through owner-fenced ledger deltas, so a straggler
// flush from the buried tenure cannot resurrect them), force-release the
// objects its tasks produced, and — only when a complete view shows zero
// live tasks and every release applied — commit Stopping→Stopped.
func (g *Global) reclaimJob(j types.JobInfo) {
	job := j.Spec.ID
	// Backlog this scheduler holds: fair-queue entries and parked specs.
	// Their durable records are PENDING; the bury below covers them.
	g.fair.DropJob(job)
	g.mu.Lock()
	for id, spec := range g.parked {
		if spec.Job == job {
			delete(g.parked, id)
		}
	}
	g.mu.Unlock()

	viewOK := g.ctrlComplete()
	tasks, complete := g.cfg.Ctrl.JobTasks(job)
	live := 0
	nodes := g.schedulableNodes() // shared across members: one scan, not one per task
	for _, st := range tasks {
		if st.Status.Terminal() {
			continue
		}
		live++
		g.failJobTask(st, nodes)
	}
	released := g.cfg.Ctrl.ForceReleaseObjects(g.jobObjectIDs(tasks))
	if viewOK && complete && live == 0 && len(released) == 0 && g.ctrlComplete() {
		if g.cfg.Ctrl.CASJobState(job, []types.JobState{types.JobStopping}, types.JobStopped) {
			g.cfg.Ctrl.LogEvent(types.Event{Kind: "job-reclaimed", Detail: job.String()})
		}
	}
}

// failJobTask buries one live task of a stopping job, preferring the node
// the follower table last saw it on (its owner, if running) and falling
// back across every schedulable node, mirroring failMember.
func (g *Global) failJobTask(st types.TaskState, nodes []types.NodeInfo) {
	if g.cfg.FailTask == nil {
		return
	}
	reason := types.ReasonJobStopped + st.Spec.Job.String()
	ordered := make([]types.NodeInfo, 0, len(nodes))
	for _, n := range nodes {
		if n.ID == st.Node {
			ordered = append([]types.NodeInfo{n}, ordered...)
		} else {
			ordered = append(ordered, n)
		}
	}
	for _, n := range ordered {
		if err := g.cfg.FailTask(n.ID, n.Addr, st.Spec, reason); err == nil {
			return
		}
	}
	// No node reachable: the record stays live and the next pass retries.
}

// jobObjectIDs derives the object IDs attributed to the job through its
// tasks' producer edges — return objects and puts alike. Re-derived from
// durable tables on every pass, so a crash between reclaim phases never
// loses track of an object.
func (g *Global) jobObjectIDs(tasks []types.TaskState) []types.ObjectID {
	if len(tasks) == 0 {
		return nil
	}
	producers := make(map[types.TaskID]bool, len(tasks))
	for _, st := range tasks {
		producers[st.Spec.ID] = true
	}
	var ids []types.ObjectID
	for _, o := range g.cfg.Ctrl.Objects() {
		if producers[o.Producer] {
			ids = append(ids, o.ID)
		}
	}
	return ids
}

// purgeJob tombstones a Stopped job's task and object records once the
// grace period has lapsed. Objects go first (they are derived from the
// task records — purging tasks first would orphan them for a crash in
// between), then tasks, then the purge stamp; the Stopped job record
// itself survives as the durable tombstone that fences replays.
func (g *Global) purgeJob(j types.JobInfo) {
	if g.cfg.JobGrace < 0 {
		return
	}
	job := j.Spec.ID
	now := g.cfg.Ctrl.NowNs()
	if j.StoppedNs == 0 || now-j.StoppedNs < g.cfg.JobGrace.Nanoseconds() {
		return
	}
	if !g.ctrlComplete() {
		return
	}
	tasks, complete := g.cfg.Ctrl.JobTasks(job)
	if !complete {
		return
	}
	if remaining := g.cfg.Ctrl.PurgeObjects(g.jobObjectIDs(tasks)); len(remaining) > 0 {
		return // copies not drained yet: the GC is still working, retry
	}
	if _, ok := g.cfg.Ctrl.PurgeJobTasks(job); !ok {
		return
	}
	if g.cfg.Ctrl.MarkJobPurged(job) {
		g.cfg.Ctrl.LogEvent(types.Event{Kind: "job-purged",
			Detail: fmt.Sprintf("%s tasks=%d", job, len(tasks))})
	}
}
