package scheduler

import (
	"math/rand"
	"sync/atomic"

	"repro/internal/types"
)

// NodeSnapshot is the per-node information available to a placement policy:
// the latest heartbeat state plus how many dependency bytes of the task
// under placement already reside on the node (object locality, the signal
// Section 3.2.2 calls out). The lifetime subsystem splits locality by
// storage tier: a dependency in a node's memory is free to use, one on its
// disk spill tier costs a restore — still far cheaper than a network pull.
type NodeSnapshot struct {
	Info types.NodeInfo
	// LocalityBytes counts dependency bytes memory-resident on the node.
	LocalityBytes int64
	// SpilledBytes counts dependency bytes on the node's disk spill tier.
	SpilledBytes int64
	// Preferred marks the node named by the task's soft locality hint
	// (core.WithLocality). Policies rank it first; the hint loses to
	// nothing else but is silently dropped when the node is infeasible or
	// dead (it never appears among the candidates then).
	Preferred bool
}

// Policy picks a node for a spilled task. Pick must only choose among the
// offered candidates (already filtered to alive + feasible).
type Policy interface {
	Pick(spec types.TaskSpec, nodes []NodeSnapshot) (types.NodeID, bool)
	Name() string
}

// LocalityPolicy is the paper's default: prefer the node holding the most
// dependency bytes in memory, then on disk, break remaining ties by
// available resources, then queue depth.
type LocalityPolicy struct{}

// Name implements Policy.
func (LocalityPolicy) Name() string { return "locality" }

// Pick implements Policy.
func (LocalityPolicy) Pick(spec types.TaskSpec, nodes []NodeSnapshot) (types.NodeID, bool) {
	if len(nodes) == 0 {
		return types.NilNodeID, false
	}
	// Full ties are broken uniformly at random (reservoir over the tied
	// prefix winner). Heartbeat state is stale by design, so a burst of
	// placements between refreshes sees identical snapshots; a
	// deterministic "first candidate" tie-break would herd that whole
	// burst onto one node, which is exactly the load imbalance the global
	// scheduler exists to avoid.
	best, ties := 0, 1
	for i := 1; i < len(nodes); i++ {
		switch {
		case betterLocality(&nodes[i], &nodes[best]):
			best, ties = i, 1
		case !betterLocality(&nodes[best], &nodes[i]):
			ties++
			if rand.Intn(ties) == 0 {
				best = i
			}
		}
	}
	return nodes[best].Info.ID, true
}

func betterLocality(a, b *NodeSnapshot) bool {
	if a.Preferred != b.Preferred {
		return a.Preferred
	}
	if a.LocalityBytes != b.LocalityBytes {
		return a.LocalityBytes > b.LocalityBytes
	}
	if a.SpilledBytes != b.SpilledBytes {
		return a.SpilledBytes > b.SpilledBytes
	}
	ac, bc := a.Info.Available[types.ResCPU], b.Info.Available[types.ResCPU]
	if ac != bc {
		return ac > bc
	}
	return a.Info.QueueLen < b.Info.QueueLen
}

// LeastLoadedPolicy ignores locality and picks the shortest queue — one arm
// of the placement ablation.
type LeastLoadedPolicy struct{}

// Name implements Policy.
func (LeastLoadedPolicy) Name() string { return "least-loaded" }

// Pick implements Policy.
func (LeastLoadedPolicy) Pick(spec types.TaskSpec, nodes []NodeSnapshot) (types.NodeID, bool) {
	if len(nodes) == 0 {
		return types.NilNodeID, false
	}
	best := 0
	for i := 1; i < len(nodes); i++ {
		if nodes[i].Info.QueueLen < nodes[best].Info.QueueLen {
			best = i
		}
	}
	return nodes[best].Info.ID, true
}

// RoundRobinPolicy rotates through candidates — the locality-blind baseline
// for the ablation bench.
type RoundRobinPolicy struct {
	next atomic.Uint64
}

// Name implements Policy.
func (*RoundRobinPolicy) Name() string { return "round-robin" }

// Pick implements Policy.
func (p *RoundRobinPolicy) Pick(spec types.TaskSpec, nodes []NodeSnapshot) (types.NodeID, bool) {
	if len(nodes) == 0 {
		return types.NilNodeID, false
	}
	i := int(p.next.Add(1)-1) % len(nodes)
	return nodes[i].Info.ID, true
}
