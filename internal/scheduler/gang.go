package scheduler

import (
	"crypto/rand"
	"encoding/binary"
	"sort"
	"time"

	"repro/internal/gcs"
	"repro/internal/types"
)

// newClaimToken returns a random non-zero claimant token for the gang
// claim/commit protocol (ROADMAP "gang claim tokens"): the Pending→Placing
// CAS records it and the Placing→Placed commit requires it, so a claimant
// stalled past the stale-claim sweep cannot commit over a successor's
// claim. Collisions only re-open the (previously always-open) hole, never
// corrupt state.
func newClaimToken() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 1 // degraded but non-zero
	}
	return binary.BigEndian.Uint64(b[:]) | 1
}

// Gang-scheduled placement groups (DESIGN.md §9). The global scheduler is
// the only component with the cluster-wide view, so it runs the
// reservation pass: claim a Pending group (CAS Pending→Placing, so several
// globals never double-reserve), plan every bundle against cluster-wide
// feasibility, issue bundle reservations to the chosen nodes, and commit
// (CAS Placing→Placed) only when all of them held — any failure rolls the
// group back to Pending with zero reservations left behind. Placed groups
// are watched: a member node's death releases the whole group's
// reservations and re-places the bundle set as a unit. Removed groups are
// reaped: reservations released everywhere, parked member tasks failed
// with the typed group-removed error.

// ReserveFunc asks a node's local scheduler to hold a bundle reservation
// (an RPC in distributed mode, like AssignFunc).
type ReserveFunc func(node types.NodeID, addr string, group types.PlacementGroupID, bundle int, res types.Resources) error

// GroupReleaseFunc asks a node to drop every reservation it holds for the
// group. removed distinguishes terminal removal (member tasks fail) from
// placement rollback (member tasks respill and follow the group).
type GroupReleaseFunc func(node types.NodeID, addr string, group types.PlacementGroupID, removed bool) error

// FailFunc asks a node to terminally fail a task, storing error payloads
// under its return objects so blocked Gets observe the failure. The global
// scheduler has no object store of its own, so burying a member task of a
// removed group is delegated to any live node.
type FailFunc func(node types.NodeID, addr string, spec types.TaskSpec, reason string) error

// gangIdleResync bounds how often an idle gang pass re-scans the group
// table when no groups are known to exist: the scan is a fan-out RPC on a
// sharded control plane, so a groupless cluster should not pay it on
// every retry tick. Group events clear the idle latch immediately; the
// coarse resync is the at-least-once fallback for a dropped event.
const gangIdleResync = 2 * time.Second

// gangScanInterval bounds unforced re-scans when groups exist: group and
// node events force an immediate pass, so the periodic scan only covers
// capacity freed by ordinary task churn (heartbeats publish no events)
// and needs no 50 ms cadence.
const gangScanInterval = 250 * time.Millisecond

// probeInterval bounds how often a Placed group's bundle reservations are
// re-verified against their nodes (checkGroupMembers' repair probe).
const probeInterval = time.Second

// gangPass reconciles every placement group against the cluster. It runs
// on group events, node events, and the retry tick, and is idempotent —
// the group table is the single source of truth, so a pass that observes a
// stale record is corrected by the next one.
func (g *Global) gangPass(forced bool) {
	if g.cfg.Reserve == nil {
		return // gang scheduling not wired (minimal test deployments)
	}
	g.retryFailedReleases()
	g.mu.Lock()
	wait := gangScanInterval
	if g.gangIdle {
		wait = gangIdleResync
	}
	skip := !forced && time.Since(g.gangScanned) < wait
	g.mu.Unlock()
	if skip {
		return
	}
	groups := g.cfg.Ctrl.PlacementGroups()
	g.mu.Lock()
	g.gangIdle = len(groups) == 0
	g.gangScanned = time.Now()
	// Cache the scan for member-task routing: retryParked may re-place a
	// whole gang's parked members right after this pass, and one table
	// scan serving all of them beats a GetPlacementGroup RPC per member.
	g.groupCache = make(map[types.PlacementGroupID]types.PlacementGroupInfo, len(groups))
	for _, info := range groups {
		g.groupCache[info.Spec.ID] = info
	}
	// Prune per-group bookkeeping for groups gone from the table (today
	// records persist, so this fires once table tombstoning lands; the
	// maps stay bounded by the table either way).
	if len(g.probeAt) > len(groups) || len(g.reapedGroups) > len(groups) {
		live := make(map[types.PlacementGroupID]bool, len(groups))
		for _, info := range groups {
			live[info.Spec.ID] = true
		}
		for id := range g.probeAt {
			if !live[id] {
				delete(g.probeAt, id)
			}
		}
		for id := range g.reapedGroups {
			if !live[id] {
				delete(g.reapedGroups, id)
			}
		}
	}
	g.mu.Unlock()
	for _, info := range groups {
		switch info.State {
		case types.GroupPending:
			g.tryPlaceGroup(info)
		case types.GroupPlacing:
			g.sweepStalePlacing(info)
		case types.GroupPlaced:
			g.checkGroupMembers(info)
		case types.GroupRemoved:
			g.reapRemoved(info)
		}
	}
}

// tryPlaceGroup admits a Pending group all-or-nothing. Planning happens
// before the claim so an infeasible group costs no CAS churn and — the
// invariant the tests pin — leaves zero reservations behind. The claim
// carries a claimant token that the commit must present again, closing the
// stale-claimant commit hole (see newClaimToken).
func (g *Global) tryPlaceGroup(info types.PlacementGroupInfo) {
	nodes := g.schedulableNodes()
	plan := planBundles(info.Spec, nodes)
	if plan == nil {
		g.gangParked.Add(1)
		return
	}
	id := info.Spec.ID
	claim := newClaimToken()
	if !g.cfg.Ctrl.CASPlacementGroupStateClaim(id, []types.PlacementGroupState{types.GroupPending}, types.GroupPlacing, nil, claim) {
		return // another scheduler claimed it, or it was removed
	}
	addr := addrIndex(nodes)
	for i, node := range plan {
		if err := g.cfg.Reserve(node, addr[node], id, i, info.Spec.Bundles[i].Resources); err != nil {
			// The node raced away (death, or its capacity went elsewhere
			// between heartbeat and reservation): roll the whole gang back.
			// The rollback carries our claim so it can never yank a
			// successor's claim if ours was already swept stale.
			g.releaseEverywhere(id, false, plan)
			g.cfg.Ctrl.CASPlacementGroupStateClaim(id, []types.PlacementGroupState{types.GroupPlacing}, types.GroupPending, nil, claim)
			return
		}
	}
	if !g.cfg.Ctrl.CASPlacementGroupStateClaim(id, []types.PlacementGroupState{types.GroupPlacing}, types.GroupPlaced, plan, claim) {
		// Removed while we were reserving — or our claim was swept stale
		// and a successor re-claimed (the token mismatch fails us): undo.
		g.releaseEverywhere(id, false, plan)
		return
	}
	g.cacheGroup(id, types.GroupPlaced, plan)
	g.gangPlaced.Add(1)
	g.cfg.Ctrl.LogEvent(types.Event{Kind: "gang-placed", Detail: id.String() + " " + info.Spec.Strategy.String()})
	g.retryParked() // parked member tasks can now route to their bundles
}

// sweepStalePlacing rescues a group stranded in Placing — its claimant
// died mid-reservation. The CAS back to Pending runs FIRST: it fences the
// (possibly still live) claimant's Placing→Placed commit — both by state
// and by clearing the recorded claim token, so even a claimant that
// stalls past the stale threshold, gets swept, and wakes after a NEW
// claimant re-claimed cannot commit: the successor's claim rewrote the
// token and the stale commit's token no longer matches (the ROADMAP
// "gang claim tokens" hole, now closed at the commit CAS itself). The
// threshold stays an order of magnitude above any healthy reservation
// pass so only effectively-dead claimants are swept.
func (g *Global) sweepStalePlacing(info types.PlacementGroupInfo) {
	staleNs := (10 * g.cfg.SweepAge).Nanoseconds()
	if g.cfg.Ctrl.NowNs()-info.LastTransitionNs < staleNs {
		return // recent claim: assume its owner is still reserving
	}
	if !g.cfg.Ctrl.CASPlacementGroupState(info.Spec.ID, []types.PlacementGroupState{types.GroupPlacing}, types.GroupPending, nil) {
		return // claimant committed (or group removed) meanwhile
	}
	g.cacheGroup(info.Spec.ID, types.GroupPending, nil)
	// The dead claimant's plan is unknowable (BundleNodes commits only at
	// Placed), so no holders can be targeted; the blanket plus the live
	// claimant's own rollback cover this path.
	g.releaseEverywhere(info.Spec.ID, false, nil)
}

// checkGroupMembers keeps a Placed group truthful. A dead bundle node
// rolls the whole placement back: every surviving reservation is released
// (survivors respill their queued member tasks) and the group re-enters
// Pending, to be re-placed as a unit — partial placements never linger.
// For live placements it re-issues the bundle reservations (idempotent on
// the nodes): a reservation lost to a rollback/claim race is re-carved,
// and a node that can no longer honor it forces the same full rollback —
// so every reservation-loss mode converges within one pass.
func (g *Global) checkGroupMembers(info types.PlacementGroupInfo) {
	probe := g.shouldProbe(info.Spec.ID)
	rollback := types.NilNodeID
	type probed struct {
		node types.NodeID
		addr string
	}
	var reProbed []probed
	// abort marks an unreadable node record (shard mid-failover): not a
	// death verdict — rolling back a healthy gang over it would evict its
	// members and strand the unreachable node's reservation. The pass is
	// cut short, but any probes already issued still run the stale-scan
	// undo below (they may have re-carved on nodes the group has left).
	abort := false
	for i, node := range info.BundleNodes {
		n, ok := g.cfg.Ctrl.GetNode(node)
		if !ok {
			abort = true
			break
		}
		// A draining member node rolls the gang back exactly like a dead
		// one: the drain protocol re-places gang reservations as a unit
		// (DESIGN.md §10), and the draining node's release respills its
		// queued members so they follow the group.
		if !n.Schedulable() {
			rollback = node
			break
		}
		if !probe {
			continue
		}
		if err := g.cfg.Reserve(node, n.Addr, info.Spec.ID, i, info.Spec.Bundles[i].Resources); err != nil {
			rollback = node
			break
		}
		reProbed = append(reProbed, probed{node: node, addr: n.Addr})
	}
	if rollback.IsNil() && !abort && len(reProbed) == 0 {
		return
	}
	// Guard against acting on a stale scan: another scheduler may already
	// have rolled back (and re-placed) the group, and our CAS from=[Placed]
	// cannot tell the incarnations apart. Re-fetch and only proceed when
	// the placement we judged is still the current one. This runs even
	// when every probe succeeded: a probe racing another scheduler's
	// rollback re-carves reservations on nodes the group is leaving, and
	// without the undo below those carves would leak (and could make a
	// just-fitting group permanently unplaceable).
	fresh, ok := g.cfg.Ctrl.GetPlacementGroup(info.Spec.ID)
	if !ok {
		// Transient read failure (e.g. shard failover): indistinguishable
		// from nothing having changed, so leave the probed reservations
		// alone and let the next pass re-judge — tearing down a healthy
		// placement over a failed read would be strictly worse.
		return
	}
	if fresh.State != types.GroupPlaced || !sameNodes(fresh.BundleNodes, info.BundleNodes) {
		// The placement changed under us: undo our probes' re-carves on
		// nodes outside the current placement (a release that overlaps an
		// in-flight re-place is healed by the next probe).
		for _, p := range reProbed {
			if g.cfg.ReleaseGroup == nil {
				break // partial wiring: tolerated like releaseEverywhere
			}
			if holdsNode(fresh.BundleNodes, p.node) {
				continue
			}
			if err := g.cfg.ReleaseGroup(p.node, p.addr, info.Spec.ID, false); err != nil {
				g.mu.Lock()
				g.releaseRetry[releaseKey{group: info.Spec.ID, node: p.node}] = false
				g.mu.Unlock()
			}
		}
		return
	}
	if rollback.IsNil() || abort {
		// Placement verified current (so any probes re-carved legitimate
		// reservations); with abort set the node-dead judgement is
		// deferred to a pass with a complete view.
		return
	}
	if !g.cfg.Ctrl.CASPlacementGroupState(info.Spec.ID, []types.PlacementGroupState{types.GroupPlaced}, types.GroupPending, nil) {
		return
	}
	g.cacheGroup(info.Spec.ID, types.GroupPending, nil)
	g.cfg.Ctrl.LogEvent(types.Event{Kind: "gang-rollback", Node: rollback, Detail: info.Spec.ID.String()})
	g.releaseEverywhere(info.Spec.ID, false, info.BundleNodes)
	// Re-place immediately if the cluster still fits the group.
	if cur, ok := g.cfg.Ctrl.GetPlacementGroup(info.Spec.ID); ok && cur.State == types.GroupPending {
		g.tryPlaceGroup(cur)
	}
}

func sameNodes(a, b []types.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func holdsNode(nodes []types.NodeID, id types.NodeID) bool {
	for _, n := range nodes {
		if n == id {
			return true
		}
	}
	return false
}

// reapRemoved cleans up after a terminal removal: reservations released on
// every live node (their local schedulers fail queued member tasks with
// the typed error) and member tasks parked here failed through a node's
// store. Reaping is idempotent across passes and schedulers; the local
// reaped-set only saves redundant RPCs, and a reap is recorded done only
// when every release succeeded — a transient RPC failure retries on the
// next pass instead of leaking the node's reservation forever.
func (g *Global) reapRemoved(info types.PlacementGroupInfo) {
	id := info.Spec.ID
	g.mu.Lock()
	done := g.reapedGroups[id]
	g.mu.Unlock()
	if done {
		return
	}
	// Only record the reap complete when the node view was complete for
	// the whole pass: a control-plane shard mid-failover hides its nodes
	// from the release blanket, and marking done on a degraded view would
	// leak any reservation a hidden node still holds. The view is probed
	// both before and after the blanket — a post-release-only check could
	// certify a scan that ran while a shard was still down (the chaos
	// suite's "only conclude with all shards answering" idiom).
	viewOK := g.nodesViewComplete()
	ok := g.releaseEverywhere(id, true, nil)
	nodes := g.schedulableNodes() // one scan shared across all member burials
	for _, spec := range g.takeParkedMembers(id) {
		g.failMember(spec, nodes)
	}
	if ok && viewOK && g.nodesViewComplete() {
		g.mu.Lock()
		g.reapedGroups[id] = true
		g.mu.Unlock()
	}
}

// nodesViewComplete reports whether Nodes() scans currently reflect every
// shard (an unreachable shard's rows are simply absent from fan-outs).
func (g *Global) nodesViewComplete() bool {
	if p, ok := g.cfg.Ctrl.(gcs.Pinger); ok {
		return p.Ping()
	}
	return true
}

// cacheGroup folds a state transition this scheduler just committed into
// the pass's group cache, so the retryParked that follows routes member
// tasks against the new truth instead of the pre-transition snapshot
// (which would re-park them, or worse, assign them to nodes the group
// just left).
func (g *Global) cacheGroup(id types.PlacementGroupID, state types.PlacementGroupState, bundleNodes []types.NodeID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	info, ok := g.groupCache[id]
	if !ok {
		return
	}
	info.State = state
	info.BundleNodes = bundleNodes
	g.groupCache[id] = info
}

// shouldProbe rate-limits the Placed-group reservation repair probe.
func (g *Global) shouldProbe(id types.PlacementGroupID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if time.Since(g.probeAt[id]) < probeInterval {
		return false
	}
	g.probeAt[id] = time.Now()
	return true
}

// takeParkedMembers removes and returns parked tasks belonging to group.
func (g *Global) takeParkedMembers(group types.PlacementGroupID) []types.TaskSpec {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []types.TaskSpec
	for id, spec := range g.parked {
		if spec.Group == group {
			out = append(out, spec)
			delete(g.parked, id)
		}
	}
	return out
}

// placeGrouped routes one member task: to the node holding its bundle when
// the group is Placed, to a terminal typed failure when the group is
// Removed, and back to the parked set otherwise (the gang pass re-drives
// parked tasks on every group transition). The group record comes from
// the last gang pass's scan when recent — one table scan serves a whole
// gang's parked members — with a direct lookup as the fallback; a ≤250 ms
// stale routing is harmless (a node whose reservation moved respills the
// task and it converges on the next pass).
func (g *Global) placeGrouped(spec types.TaskSpec) {
	g.mu.Lock()
	info, ok := g.groupCache[spec.Group]
	cacheFresh := time.Since(g.gangScanned) < gangScanInterval
	g.mu.Unlock()
	if !ok || !cacheFresh {
		info, ok = g.cfg.Ctrl.GetPlacementGroup(spec.Group)
	}
	if !ok {
		g.park(spec) // control-plane hiccup, or create still in flight
		return
	}
	switch info.State {
	case types.GroupRemoved:
		g.failMember(spec, nil)
	case types.GroupPlaced:
		node := info.NodeFor(spec.Bundle)
		if node.IsNil() {
			g.failMember(spec, nil) // bundle index beyond the placed set
			return
		}
		n, ok := g.cfg.Ctrl.GetNode(node)
		if !ok || !n.Schedulable() {
			g.park(spec) // member node died or is draining; rollback will re-place
			return
		}
		if err := g.cfg.Assign(node, n.Addr, spec); err != nil {
			g.park(spec)
			return
		}
		g.placed.Add(1)
		g.cfg.Ctrl.LogEvent(types.Event{Kind: "global-place", Task: spec.ID, Node: node, Detail: "gang:" + spec.Group.String()})
	default:
		g.park(spec)
	}
}

// failMember buries a member task through any live node (which has the
// object store needed to make the failure observable). nodes may carry a
// caller-shared alive-node snapshot so burying a whole gang's members
// costs one scan, not one per member; nil fetches a fresh one. With no
// live node the task parks; the next pass retries.
func (g *Global) failMember(spec types.TaskSpec, nodes []types.NodeInfo) {
	if g.cfg.FailTask == nil {
		g.park(spec)
		return
	}
	if nodes == nil {
		nodes = g.schedulableNodes()
	}
	reason := types.ReasonGroupRemoved + spec.Group.String()
	for _, n := range nodes {
		if err := g.cfg.FailTask(n.ID, n.Addr, spec, reason); err == nil {
			return
		}
	}
	g.park(spec)
}

// releaseEverywhere drops the group's reservations on every live node,
// reporting whether every release RPC succeeded. Releases are idempotent,
// so blanketing the cluster is simpler and safer than tracking exactly
// who holds what mid-rollback. Nodes whose release RPC failed are queued
// for targeted retry (retryFailedReleases): without it a transient RPC
// failure during a rollback would strand a bundle reservation — and the
// capacity it carves out — until the group is removed, since later passes
// only probe the group's *current* placement. holders names nodes KNOWN
// to hold reservations (the rolled-back placement); any holder hidden
// from the blanket — its node record unreadable during a shard failover,
// so no RPC was even attempted — is queued for retry too, since the
// blanket alone would silently skip it.
func (g *Global) releaseEverywhere(id types.PlacementGroupID, removed bool, holders []types.NodeID) bool {
	if g.cfg.ReleaseGroup == nil {
		return true
	}
	ok := true
	visible := make(map[types.NodeID]bool)
	for _, n := range g.aliveNodes() {
		visible[n.ID] = true
		if err := g.cfg.ReleaseGroup(n.ID, n.Addr, id, removed); err != nil {
			ok = false
			g.mu.Lock()
			g.releaseRetry[releaseKey{group: id, node: n.ID}] = removed
			g.mu.Unlock()
		}
	}
	for _, h := range holders {
		if visible[h] {
			continue
		}
		ok = false
		g.mu.Lock()
		g.releaseRetry[releaseKey{group: id, node: h}] = removed
		g.mu.Unlock()
	}
	return ok
}

// releaseKey identifies one failed reservation-release RPC to retry.
type releaseKey struct {
	group types.PlacementGroupID
	node  types.NodeID
}

// retryFailedReleases re-drives release RPCs that failed transiently.
// A dead target drops out (its reservations died with it); a node that
// meanwhile joined the group's new placement gets its reservation briefly
// released and re-carved by the next repair probe — converging, and far
// better than the permanent capacity leak.
func (g *Global) retryFailedReleases() {
	if g.cfg.ReleaseGroup == nil {
		return
	}
	g.mu.Lock()
	if len(g.releaseRetry) == 0 {
		g.mu.Unlock()
		return
	}
	pending := make(map[releaseKey]bool, len(g.releaseRetry))
	for k, removed := range g.releaseRetry {
		pending[k] = removed
	}
	g.mu.Unlock()
	for k, removed := range pending {
		done := false
		// A failed node-record read is NOT a death verdict: the shard
		// owning the record may be mid-failover while the node is alive
		// and still holding the reservation — keep the entry and retry.
		if n, ok := g.cfg.Ctrl.GetNode(k.node); ok && !n.Alive {
			done = true // confirmed dead: its reservations died with it
		} else if ok {
			if err := g.cfg.ReleaseGroup(k.node, n.Addr, k.group, removed); err == nil {
				done = true
			}
		}
		if done {
			g.mu.Lock()
			delete(g.releaseRetry, k)
			g.mu.Unlock()
		}
	}
}

func (g *Global) aliveNodes() []types.NodeInfo {
	nodes := g.cfg.Ctrl.Nodes()
	out := nodes[:0]
	for _, n := range nodes {
		if n.Alive {
			out = append(out, n)
		}
	}
	return out
}

// schedulableNodes excludes draining nodes too: new gang placements must
// not land on a node shedding its state. The release blanket keeps using
// aliveNodes — a draining node still holds reservations to release.
func (g *Global) schedulableNodes() []types.NodeInfo {
	nodes := g.cfg.Ctrl.Nodes()
	out := nodes[:0]
	for _, n := range nodes {
		if n.Schedulable() {
			out = append(out, n)
		}
	}
	return out
}

func addrIndex(nodes []types.NodeInfo) map[types.NodeID]string {
	out := make(map[types.NodeID]string, len(nodes))
	for _, n := range nodes {
		out[n.ID] = n.Addr
	}
	return out
}

// planBundles maps every bundle to a node, all-or-nothing, against the
// nodes' heartbeat availability (total capacity before the first
// heartbeat). nil means the group does not fit the cluster right now.
// STRICT_SPREAD assigns each bundle a distinct node; PACK fills already-
// chosen nodes first so the group lands on as few nodes as possible.
// Bundles are planned largest-first (better bin packing); the returned
// slice is indexed by bundle position.
func planBundles(spec types.PlacementGroupSpec, nodes []types.NodeInfo) []types.NodeID {
	type cand struct {
		id    types.NodeID
		avail types.Resources
		used  bool
	}
	cands := make([]*cand, 0, len(nodes))
	for _, n := range nodes {
		avail := n.Available
		if avail == nil {
			avail = n.Total
		}
		cands = append(cands, &cand{id: n.ID, avail: avail.Clone()})
	}

	order := make([]int, len(spec.Bundles))
	for i := range order {
		order[i] = i
	}
	weight := func(r types.Resources) float64 {
		w := 0.0
		for _, v := range r {
			w += v
		}
		return w
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weight(spec.Bundles[order[a]].Resources) > weight(spec.Bundles[order[b]].Resources)
	})

	plan := make([]types.NodeID, len(spec.Bundles))
	for _, bi := range order {
		demand := spec.Bundles[bi].Resources
		var pick *cand
		for _, c := range cands {
			if spec.Strategy == types.StrategyStrictSpread && c.used {
				continue
			}
			if !demand.Fits(c.avail) {
				continue
			}
			switch spec.Strategy {
			case types.StrategyPack:
				// Prefer a node already in the plan; among fresh nodes,
				// the first fitting one.
				if pick == nil || (c.used && !pick.used) {
					pick = c
				}
			default: // STRICT_SPREAD: most headroom for balance
				if pick == nil || weight(c.avail) > weight(pick.avail) {
					pick = c
				}
			}
			if spec.Strategy == types.StrategyPack && pick != nil && pick.used {
				break
			}
		}
		if pick == nil {
			return nil // does not fit: place nothing
		}
		pick.avail.Sub(demand)
		pick.used = true
		plan[bi] = pick.id
	}
	return plan
}
