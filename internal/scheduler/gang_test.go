package scheduler

import (
	"testing"
	"time"

	"repro/internal/types"
)

func tGroup(seed byte) types.PlacementGroupID {
	var id types.PlacementGroupID
	id[0] = seed
	return id
}

// TestReserveBundleAccounting pins the reservation bookkeeping: a bundle
// carves capacity out of the general pool, is idempotent, refuses what
// does not fit, and release restores the books exactly.
func TestReserveBundleAccounting(t *testing.T) {
	l, _, _, _ := buildLocal(t, types.CPU(8), SpillNever)
	g := tGroup(1)

	if !l.ReserveBundle(g, 0, types.CPU(3)) {
		t.Fatal("reserve failed")
	}
	if !l.ReserveBundle(g, 0, types.CPU(3)) {
		t.Fatal("re-reserve must be idempotent")
	}
	if !l.ReserveBundle(g, 1, types.CPU(3)) {
		t.Fatal("second bundle failed")
	}
	total, avail, bundles, reserved := l.Accounting()
	if total[types.ResCPU] != 8 || avail[types.ResCPU] != 2 || bundles != 2 || reserved[types.ResCPU] != 6 {
		t.Fatalf("bad books after reserve: total=%v avail=%v bundles=%d reserved=%v", total, avail, bundles, reserved)
	}
	if l.ReserveBundle(g, 2, types.CPU(3)) {
		t.Fatal("over-capacity reserve must fail")
	}
	// A failed reserve leaves no trace (the all-or-nothing invariant's
	// node-local half).
	_, avail, bundles, _ = l.Accounting()
	if avail[types.ResCPU] != 2 || bundles != 2 {
		t.Fatalf("failed reserve left residue: avail=%v bundles=%d", avail, bundles)
	}

	l.ReleaseGroup(g, false)
	_, avail, bundles, reserved = l.Accounting()
	if avail[types.ResCPU] != 8 || bundles != 0 || !reserved.IsZero() {
		t.Fatalf("release did not restore books: avail=%v bundles=%d reserved=%v", avail, bundles, reserved)
	}
}

// TestGroupedTaskRunsFromReservation checks admission draws from the
// bundle pool — and that the reservation survives task churn: after the
// member task finishes, the bundle is still reserved.
func TestGroupedTaskRunsFromReservation(t *testing.T) {
	l, log, _, _ := buildLocal(t, types.CPU(4), SpillNever)
	g := tGroup(2)
	if !l.ReserveBundle(g, 0, types.CPU(2)) {
		t.Fatal("reserve failed")
	}

	spec := tSpec(50, types.CPU(2))
	spec.Group = g
	spec.Bundle = 0
	if err := l.Submit(spec, false); err != nil {
		t.Fatal(err)
	}
	waitExec(t, log, spec.ID)

	// Churn over: the reservation is intact, general pool untouched.
	deadline := time.Now().Add(2 * time.Second)
	for {
		total, avail, bundles, reserved := l.Accounting()
		if avail[types.ResCPU] == 2 && bundles == 1 && reserved[types.ResCPU] == 2 && total[types.ResCPU] == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reservation did not survive churn: total=%v avail=%v bundles=%d reserved=%v",
				total, avail, bundles, reserved)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGroupedTaskWithoutReservationSpills checks a member task born on a
// node without its bundle goes to the spill queue instead of running.
func TestGroupedTaskWithoutReservationSpills(t *testing.T) {
	l, log, ctrl, _ := buildLocal(t, types.CPU(4), SpillNever)
	sub := ctrl.SubscribeSpill()
	defer sub.Close()

	spec := tSpec(51, types.CPU(1))
	spec.Group = tGroup(3)
	spec.Bundle = 0
	if err := l.Submit(spec, false); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.C():
	case <-time.After(2 * time.Second):
		t.Fatal("grouped task without reservation did not spill")
	}
	select {
	case id := <-log.ch:
		t.Fatalf("task %v ran without a reservation", id)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestLocalityHintSpills checks a locality hint naming another node routes
// through the global scheduler.
func TestLocalityHintSpills(t *testing.T) {
	l, _, ctrl, _ := buildLocal(t, types.CPU(4), SpillNever)
	sub := ctrl.SubscribeSpill()
	defer sub.Close()

	spec := tSpec(52, types.CPU(1))
	spec.Locality = tNode(99) // not this node
	if err := l.Submit(spec, false); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.C():
	case <-time.After(2 * time.Second):
		t.Fatal("locality-hinted task did not spill")
	}
}

// TestReleaseGroupFailsQueuedMembers checks terminal removal: queued
// member tasks fail typed (error payloads stored, status Failed).
func TestReleaseGroupFailsQueuedMembers(t *testing.T) {
	l, _, ctrl, store := buildLocal(t, types.CPU(2), SpillNever)
	g := tGroup(4)
	if !l.ReserveBundle(g, 0, types.CPU(2)) {
		t.Fatal("reserve failed")
	}

	// A blocked member: depends on an object that never arrives, so it
	// stays in waiting until the release.
	var dep types.ObjectID
	dep[0] = 77
	ctrl.EnsureObject(dep, types.NilTaskID)
	spec := tSpec(53, types.CPU(1), dep)
	spec.Group = g
	spec.Bundle = 0
	if err := l.Submit(spec, false); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.WaitingLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("task never parked")
		}
		time.Sleep(time.Millisecond)
	}

	l.ReleaseGroup(g, true)
	st, ok := ctrl.GetTask(spec.ID)
	if !ok || st.Status != types.TaskFailed {
		t.Fatalf("member not failed: %+v ok=%v", st, ok)
	}
	if _, ok := store.Get(spec.ReturnID(0)); !ok {
		t.Fatal("no error payload stored for the failed member")
	}
	_, avail, bundles, _ := l.Accounting()
	if avail[types.ResCPU] != 2 || bundles != 0 {
		t.Fatalf("release left residue: avail=%v bundles=%d", avail, bundles)
	}
}

// TestPlanBundlesStrategies pins the planner: spread needs distinct nodes,
// pack prefers few nodes, and infeasible groups plan to nothing.
func TestPlanBundlesStrategies(t *testing.T) {
	nodes := []types.NodeInfo{
		{ID: tNode(1), Alive: true, Total: types.CPU(8), Available: types.CPU(8)},
		{ID: tNode(2), Alive: true, Total: types.CPU(8), Available: types.CPU(8)},
	}
	spread := types.PlacementGroupSpec{
		ID: tGroup(9), Strategy: types.StrategyStrictSpread,
		Bundles: []types.Bundle{{Resources: types.CPU(2)}, {Resources: types.CPU(2)}},
	}
	plan := planBundles(spread, nodes)
	if plan == nil || plan[0] == plan[1] {
		t.Fatalf("spread plan wrong: %v", plan)
	}
	spread.Bundles = append(spread.Bundles, types.Bundle{Resources: types.CPU(2)})
	if plan := planBundles(spread, nodes); plan != nil {
		t.Fatalf("3 spread bundles on 2 nodes must not plan: %v", plan)
	}

	pack := types.PlacementGroupSpec{
		ID: tGroup(10), Strategy: types.StrategyPack,
		Bundles: []types.Bundle{{Resources: types.CPU(3)}, {Resources: types.CPU(3)}},
	}
	plan = planBundles(pack, nodes)
	if plan == nil || plan[0] != plan[1] {
		t.Fatalf("pack plan should co-locate: %v", plan)
	}
	big := types.PlacementGroupSpec{
		ID: tGroup(11), Strategy: types.StrategyPack,
		Bundles: []types.Bundle{{Resources: types.CPU(9)}},
	}
	if plan := planBundles(big, nodes); plan != nil {
		t.Fatalf("oversized bundle must not plan: %v", plan)
	}
}
