package scheduler

import (
	"fmt"
	"strings"

	"repro/internal/codec"
	"repro/internal/types"
)

// Bundle reservations (gang scheduling, DESIGN.md §9). A reservation
// carves a placement-group bundle's resources out of the node's general
// pool into a dedicated per-bundle pool. Member tasks are admitted against
// the bundle pool, and their completions return capacity to it — so the
// reservation survives task churn: an idle bundle stays reserved, which is
// the whole point of gang scheduling (the learner's slot is still there
// when its simulators finish a round). Releasing a group detaches its
// pools and moves their capacity back to the general pool.

// bundleKey identifies one reservation on this node.
type bundleKey struct {
	group  types.PlacementGroupID
	bundle int
}

// ReserveBundle reserves res for (group, bundle) out of the node's general
// pool. Idempotent: re-reserving an existing bundle reports success
// without carving twice (the global scheduler's rollback/retry paths
// re-issue reservations freely). Returns false when the capacity is not
// currently available — the caller rolls back the whole gang.
func (l *Local) ReserveBundle(group types.PlacementGroupID, bundle int, res types.Resources) bool {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return false
	}
	key := bundleKey{group: group, bundle: bundle}
	if _, ok := l.bundles[key]; ok {
		l.mu.Unlock()
		return true
	}
	if !l.res.tryAcquire(res) {
		l.mu.Unlock()
		return false
	}
	if l.bundles == nil {
		l.bundles = make(map[bundleKey]*resourcePool)
	}
	l.bundles[key] = newResourcePool(res)
	l.mu.Unlock()
	// Event logging is a control-plane RPC in distributed mode: keep it
	// outside l.mu so a slow control plane cannot freeze the node's
	// scheduling (same discipline as the object store's lock scope).
	l.cfg.Ctrl.LogEvent(types.Event{Kind: "gang-reserve", Node: l.cfg.Node,
		Detail: fmt.Sprintf("%v bundle %d %v", group, bundle, res)})
	return true
}

// ReleaseGroup releases every reservation this node holds for group,
// returning the bundles' capacity to the general pool (capacity held by
// still-running member tasks follows when they finish, via pool
// forwarding). Queued and waiting member tasks are evicted: with
// removed=false (placement rollback, e.g. a member node died) they respill
// to the global scheduler so they follow the group to its next placement;
// with removed=true they fail with the typed group-removed error.
// Idempotent — releasing an absent group is a no-op.
func (l *Local) ReleaseGroup(group types.PlacementGroupID, removed bool) {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	released := false
	for key, pool := range l.bundles {
		if key.group != group {
			continue
		}
		delete(l.bundles, key)
		l.res.release(pool.detach(l.res))
		released = true
	}
	var members []types.TaskSpec
	kept := l.runnable[:0]
	for _, t := range l.runnable {
		if t.spec.Group == group {
			members = append(members, t.spec)
		} else {
			kept = append(kept, t)
		}
	}
	l.runnable = kept
	for id, w := range l.waiting {
		if w.spec.Group == group {
			members = append(members, w.spec)
			delete(l.waiting, id)
			close(w.cancel) // stop its resolvers' polling and fetching
		}
	}
	l.mu.Unlock()

	for _, spec := range members {
		if removed {
			l.FailTask(spec, types.ReasonGroupRemoved+spec.Group.String())
		} else {
			l.respillGrouped(spec)
		}
		// Return the enqueue-time borrows last, mirroring runTask's LIFO
		// ordering (respill re-retains through the bridge first).
		if l.cfg.Refs != nil {
			l.cfg.Refs.Release(spec.Deps()...)
		}
	}
	if released {
		l.cfg.Ctrl.LogEvent(types.Event{Kind: "gang-release", Node: l.cfg.Node,
			Detail: fmt.Sprintf("%v removed=%v members=%d", group, removed, len(members))})
		l.kickDispatch()
	}
}

// respillGrouped sends a member task back through the global spill queue
// after its bundle reservation left this node: the gang pass re-places the
// group as a unit and the task follows. The CAS back to PENDING makes the
// respill race-free against concurrent placements; if it is lost, whoever
// won owns the task.
func (l *Local) respillGrouped(spec types.TaskSpec) {
	l.bridgeSpill(spec)
	if !l.cfg.Ctrl.CASTaskStatus(spec.ID, []types.TaskStatus{types.TaskQueued, types.TaskScheduled}, types.TaskPending) {
		return
	}
	l.spilled.Add(1)
	l.cfg.Ctrl.PublishSpill(spec)
}

// FailTask terminally fails a task, storing error payloads under every
// return object so blocked Gets observe the failure instead of hanging.
// Both the removal path above and the global scheduler's gang and job
// reclaim passes (which bury tasks through any live node — only a node
// holds an object store) route here. The claimable states normally stop
// at QUEUED: dispatch claims QUEUED→SCHEDULED via CAS, so a task at
// SCHEDULED or beyond is owned by a worker about to produce (or already
// producing) real bytes under its return IDs — burying it in parallel
// would publish a second, conflicting value for the same immutable
// object. Exactly one of {dispatch, fail} wins the QUEUED state.
//
// Job-stop burials (DESIGN.md §14) are the exception: they also claim
// SCHEDULED and RUNNING. A stop destroys the tenant's records and objects
// wholesale, so the conflicting-value hazard has nothing left to protect;
// the Disown below fences the worker's late terminal stamp, and the error
// payload Put is best-effort against a racing real value (a Get that
// observes the real bytes saw a task that genuinely completed first).
func (l *Local) FailTask(spec types.TaskSpec, reason string) {
	claim := []types.TaskStatus{types.TaskPending, types.TaskQueued}
	if strings.HasPrefix(reason, types.ReasonJobStopped) {
		claim = append(claim, types.TaskScheduled, types.TaskRunning)
	}
	if !l.cfg.Ctrl.CASTaskStatus(spec.ID, claim, types.TaskFailed) {
		return
	}
	for i := 0; i < spec.NumReturns; i++ {
		// Best effort: the store may itself be failing.
		_ = l.cfg.Store.Put(spec.ReturnID(i), codec.EncodeError(reason))
	}
	if l.cfg.Ledger != nil {
		// The CAS buried the task directly in the table; drop any local
		// tenure so the ledger never re-stamps over the burial.
		l.cfg.Ledger.Disown(spec.ID)
	}
	l.cfg.Ctrl.SetTaskStatus(spec.ID, types.TaskFailed, l.cfg.Node, types.NilWorkerID, reason)
}

// hasBundle reports whether this node holds (group, bundle)'s reservation.
func (l *Local) hasBundle(group types.PlacementGroupID, bundle int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.bundles[bundleKey{group: group, bundle: bundle}]
	return ok
}

// poolFor resolves the resource pool a task draws from: its bundle's
// reservation pool when this node holds one, the general pool otherwise
// (including after the bundle's release — the detached pool's capacity
// moved to the general pool, so that is where late releases belong).
func (l *Local) poolFor(spec types.TaskSpec) *resourcePool {
	if spec.InGroup() {
		l.mu.Lock()
		pool, ok := l.bundles[bundleKey{group: spec.Group, bundle: spec.Bundle}]
		l.mu.Unlock()
		if ok {
			return pool
		}
	}
	return l.res
}

// Accounting snapshots the node's resource books for invariant checks:
// the general pool's (total, available) plus the count and summed capacity
// of live bundle reservations. With no tasks running and no reservations,
// avail == total and reserved is empty — the zero-partial-reservations
// invariant the gang tests assert.
func (l *Local) Accounting() (total, avail types.Resources, bundles int, reserved types.Resources) {
	l.mu.Lock()
	defer l.mu.Unlock()
	total, avail = l.res.snapshot()
	reserved = types.Resources{}
	for _, pool := range l.bundles {
		t, _ := pool.snapshot()
		reserved.Add(t)
		bundles++
	}
	return total, avail, bundles, reserved
}
