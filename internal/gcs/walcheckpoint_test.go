package gcs

import (
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/types"
)

// TestWALSizeTriggeredCheckpoint churns mutations through a supervised
// shard with a small checkpoint threshold and asserts the WAL stays
// bounded: size-triggered checkpoints must keep recovery replay cost
// proportional to the threshold, not to uptime. Durability is re-verified
// by a kill+restart after the churn — the snapshot the checkpoints wrote
// (plus whatever WAL tail remains) must reproduce the final state.
func TestWALSizeTriggeredCheckpoint(t *testing.T) {
	const threshold = 8 << 10 // 8 KiB: small enough that churn crosses it many times
	nw := transport.NewInproc(0)
	sup, err := NewSupervisor(SupervisorConfig{
		Shards:             1,
		Network:            nw,
		MapAddr:            "gcs",
		DataDir:            t.TempDir(),
		AutoRestart:        5 * time.Millisecond,
		CheckpointWALBytes: threshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	s := newTestSharded(t, nw)

	// Churn: job records created and walked through their lifecycle — every
	// call below is a WAL'd mutation on the single shard.
	var maxWAL int64
	var jobs []types.JobID
	for i := 0; i < 400; i++ {
		var id types.JobID
		id[0], id[1], id[2] = byte(i), byte(i>>8), 0x5A
		if !s.CreateJob(types.JobSpec{ID: id, Name: "churn", Weight: 1}) {
			t.Fatalf("CreateJob %d", i)
		}
		jobs = append(jobs, id)
		s.CASJobState(id, []types.JobState{types.JobRunning}, types.JobStopping)
		s.CASJobState(id, []types.JobState{types.JobStopping}, types.JobStopped)
		if w := sup.Shard(0).Stats().WALBytes; w > maxWAL {
			maxWAL = w
		}
		if i%25 == 0 {
			// Give the supervision tick a chance to observe the growth; the
			// churn loop alone can outrun a 5ms ticker, and on a loaded
			// machine the ticker itself can slip.
			time.Sleep(10 * time.Millisecond)
		}
	}
	// Let the final tick settle, then sample once more.
	time.Sleep(50 * time.Millisecond)
	if w := sup.Shard(0).Stats().WALBytes; w > maxWAL {
		maxWAL = w
	}

	// The bound: the WAL may overshoot between ticks, but must never grow
	// anywhere near the unbounded total (400 creates + 800 CAS transitions
	// of gob-encoded records — hundreds of KiB without checkpoints). 8x the
	// threshold allows a full inter-tick burst on a slow CI machine.
	if maxWAL > 8*threshold {
		t.Fatalf("WAL grew to %d bytes under churn (threshold %d): checkpoints not bounding it", maxWAL, threshold)
	}
	if sup.Shard(0).Stats().WALBytes >= maxWAL && maxWAL > threshold {
		// At least one truncation must have happened if the WAL ever crossed
		// the threshold.
		t.Fatalf("WAL never truncated: now=%d max=%d", sup.Shard(0).Stats().WALBytes, maxWAL)
	}

	// Durability across the checkpoints: kill and let the supervisor
	// restart from snapshot+WAL; every record must survive.
	sup.KillShard(0)
	deadline := time.Now().Add(10 * time.Second)
	for !sup.Shard(0).Alive() {
		if time.Now().After(deadline) {
			t.Fatal("shard never auto-restarted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := len(s.Jobs()); got != len(jobs) {
		t.Fatalf("job records after restart = %d, want %d", got, len(jobs))
	}
	for _, id := range []types.JobID{jobs[0], jobs[len(jobs)/2], jobs[len(jobs)-1]} {
		info, ok := s.GetJob(id)
		if !ok || info.State != types.JobStopped {
			t.Fatalf("job %v after restart: %+v ok=%v", id, info, ok)
		}
	}
}
