// Package gcs implements the logically-centralized control plane of the
// paper's Section 3.2.1 (what Ray later called the Global Control Store).
// It layers typed tables — task table, object table, function table, node
// table, and event log — over the sharded kv store, and publishes the
// notifications (object ready, task status, spillover, node membership)
// that let every other component be stateless.
package gcs

import (
	"repro/internal/metrics"
	"repro/internal/types"
)

// Sub is a pub/sub subscription handle. kv.Subscription satisfies it; the
// remote (TCP) client provides its own implementation with the same shape.
type Sub interface {
	C() <-chan []byte
	Close()
}

// FunctionInfo is a function-table record: one registered remote function.
type FunctionInfo struct {
	Name       string
	NumReturns int
}

// API is the control-plane surface consumed by schedulers, workers, object
// stores, and tools. A single implementation backed by the local kv store
// serves in-process clusters; a transport-backed client implements the same
// interface for multi-process clusters, which is what makes every component
// except the database itself stateless (paper Section 3.2.1).
type API interface {
	// NowNs returns nanoseconds since the cluster epoch. All control-state
	// timestamps use this clock so profiling timelines line up (R7).
	NowNs() int64

	// Task table. AddTask inserts the spec exactly once (lineage record);
	// re-adding an existing task returns false, which is how replayed
	// submissions deduplicate.
	AddTask(state types.TaskState) bool
	GetTask(id types.TaskID) (types.TaskState, bool)
	SetTaskStatus(id types.TaskID, status types.TaskStatus, node types.NodeID, worker types.WorkerID, errMsg string)
	// SetTaskStatusAt is SetTaskStatus with a caller-captured transition
	// timestamp (non-positive = now); see the executor's finish stamping.
	SetTaskStatusAt(id types.TaskID, status types.TaskStatus, node types.NodeID, worker types.WorkerID, errMsg string, atNs int64)
	// CASTaskStatus atomically transitions the task's status to `to` iff the
	// current status is in `from`, reporting success. Replay/resubmission
	// races are settled through this: exactly one contender wins the
	// transition back to PENDING and re-executes the task.
	CASTaskStatus(id types.TaskID, from []types.TaskStatus, to types.TaskStatus) bool
	// ClaimTask is the ownership-transfer CAS (DESIGN.md §13): it atomically
	// transitions the status like CASTaskStatus and, on success, stamps
	// `owner` as the record's Owner and Node and bumps OwnerSeq. The winner
	// receives the new OwnerSeq — the base its task ledger's async deltas
	// must exceed — so a stale delta from any earlier ownership tenure can
	// never apply past the transfer.
	ClaimTask(id types.TaskID, from []types.TaskStatus, to types.TaskStatus, owner types.NodeID) (uint64, bool)
	RecordTaskRetry(id types.TaskID) int
	// ModifyTaskStates applies one owner's task-ledger flush: a batch of
	// full-state deltas (latest owner view per task, transitions coalesced),
	// bound to one idempotency token recorded in each touched record's
	// MutOps ring so redelivery after a shard crash re-applies exactly the
	// records the crash missed. A delta applies only if its Owner matches
	// the record's and its Seq exceeds the record's OwnerSeq. Returns the
	// IDs whose deltas could NOT be applied because their shard stayed
	// unreachable, so the caller requeues them under the same token; deltas
	// rejected by the owner/seq guard (authority moved on) are consumed, not
	// failed. Nil means fully applied.
	ModifyTaskStates(node types.NodeID, deltas []types.TaskStateDelta, op uint64) []types.TaskID
	// LiveTasksOwnedBy returns every non-terminal task whose record names
	// `owner` as its ledger authority, plus whether the scan covered the
	// whole table (false when a shard was unreachable — the owner-death
	// transfer retries later rather than concluding from a partial view).
	LiveTasksOwnedBy(owner types.NodeID) ([]types.TaskState, bool)
	Tasks() []types.TaskState
	// StalePendingTasks returns the specs of tasks durably recorded
	// PENDING whose latest transition is at least olderThanNs old — tasks
	// claimed by nobody, typically because their spill publish died with a
	// control-plane shard. The global scheduler's rescue sweep consumes
	// it; filtering server-side keeps the sweep O(stale), not O(history).
	StalePendingTasks(olderThanNs int64) []types.TaskSpec
	SubscribeTaskStatus(id types.TaskID) Sub

	// Object table. EnsureObject creates a pending entry recording the
	// producer (the lineage edge). AddObjectLocation marks the object ready
	// and publishes on its ready channel; RemoveObjectLocation transitions
	// to Lost when the last copy disappears.
	EnsureObject(id types.ObjectID, producer types.TaskID)
	// EnsureObjects is the batched form the task ledger's flush uses for
	// lineage edges (DESIGN.md §13): each entry ensures the object exists
	// and records its producing task, healing a missing Producer on records
	// that a location publish created first. Returns the IDs that could NOT
	// be ensured (their shard stayed unreachable) so the caller requeues
	// them; nil means fully applied. Idempotent, so no token is needed.
	EnsureObjects(producers map[types.ObjectID]types.TaskID) []types.ObjectID
	AddObjectLocation(id types.ObjectID, node types.NodeID, size int64)
	RemoveObjectLocation(id types.ObjectID, node types.NodeID)
	GetObject(id types.ObjectID) (types.ObjectInfo, bool)
	Objects() []types.ObjectInfo
	SubscribeObjectReady(id types.ObjectID) Sub

	// Object lifetime (internal/lifetime). ModifyObjectRefCount adjusts the
	// cluster-wide reference count and returns the new value; a transition
	// from positive to zero publishes the object on the GC channel, which is
	// what makes reclamation automatic. MarkObjectSpilled records whether a
	// node's copy is on its disk spill tier (transfer and placement prefer
	// memory copies). SubscribeObjectGC delivers the IDs of newly
	// garbage-eligible objects; payload is the raw ObjectID bytes.
	ModifyObjectRefCount(id types.ObjectID, delta int64) int64
	// ModifyObjectRefCounts applies one node's ledger flush: a batch of net
	// per-object deltas attributed to node, bound to one idempotency token
	// recorded in each touched object's RefOps ring (so redelivery after a
	// shard crash re-applies exactly the objects the crash missed). A zero
	// delta is a touch: retain+release cycles that net out within a flush
	// interval still mark the object ever-retained and, at count zero,
	// GC-eligible. Returns the IDs whose deltas could NOT be applied (their
	// shard stayed unreachable past the retry window) so the caller can
	// requeue them under the same token; nil means fully applied.
	ModifyObjectRefCounts(node types.NodeID, deltas map[types.ObjectID]int64, op uint64) []types.ObjectID
	// SweepDeadNodeRefs subtracts every refcount share attributed to node —
	// an owner that died without flushing its releases — making the objects
	// it alone kept alive GC-eligible. Idempotent; reports objects adjusted,
	// or negative when part of the object table was unreachable and the
	// caller should retry the (idempotent) sweep later.
	SweepDeadNodeRefs(node types.NodeID) int
	MarkObjectSpilled(id types.ObjectID, node types.NodeID, spilled bool)
	SubscribeObjectGC() Sub

	// Placement-group table (gang scheduling). CreatePlacementGroup inserts
	// the record exactly once (idempotent by group ID); RemovePlacementGroup
	// transitions it to the terminal Removed state, after which the gang
	// pass releases its bundle reservations and fails pending member tasks.
	// CASPlacementGroupState is the claim/commit primitive of the gang
	// protocol: Pending→Placing claims a group for one scheduler's
	// reservation pass, Placing→Placed commits the bundle→node assignment,
	// and rollback paths transition back to Pending (clearing BundleNodes).
	// Every transition publishes the updated record on the group channel.
	CreatePlacementGroup(spec types.PlacementGroupSpec) bool
	RemovePlacementGroup(id types.PlacementGroupID) bool
	GetPlacementGroup(id types.PlacementGroupID) (types.PlacementGroupInfo, bool)
	PlacementGroups() []types.PlacementGroupInfo
	CASPlacementGroupState(id types.PlacementGroupID, from []types.PlacementGroupState, to types.PlacementGroupState, bundleNodes []types.NodeID) bool
	// CASPlacementGroupStateClaim is CASPlacementGroupState carrying a
	// claimant token: a transition to Placing records the token, a
	// transition to Placed additionally requires it to match the recorded
	// claim, and every rollback to Pending clears it. claim 0 skips the
	// token bookkeeping (legacy callers and the stale-claim sweep, which
	// fences by state alone).
	CASPlacementGroupStateClaim(id types.PlacementGroupID, from []types.PlacementGroupState, to types.PlacementGroupState, bundleNodes []types.NodeID, claim uint64) bool
	SubscribePlacementGroups() Sub

	// Job table (multi-tenancy, DESIGN.md §14). CreateJob inserts the record
	// exactly once (idempotent by job ID); CASJobState drives the lifecycle
	// (Running→Stopping→Stopped; Stopped is the terminal tombstone that
	// outlives the job's purged records). Every transition publishes the
	// updated record on the jobs channel, which the global schedulers'
	// fair-share queue and reclaim pass consume.
	CreateJob(spec types.JobSpec) bool
	GetJob(id types.JobID) (types.JobInfo, bool)
	Jobs() []types.JobInfo
	CASJobState(id types.JobID, from []types.JobState, to types.JobState) bool
	// MarkJobPurged stamps PurgedNs on a Stopped job once its task and
	// object records have been tombstoned; idempotent (false if already
	// stamped, missing, or not Stopped).
	MarkJobPurged(id types.JobID) bool
	SubscribeJobs() Sub
	// JobTasks returns every task record (any status) attributed to the
	// job, plus whether the scan covered the whole table (false when a
	// shard was unreachable — the reclaim pass retries rather than
	// concluding from a partial view).
	JobTasks(job types.JobID) ([]types.TaskState, bool)
	// ForceReleaseObjects is the job-stop reclaim hammer: each object's
	// refcount is forced to zero, its Holders attribution dropped, and —
	// when copies remain — a GC publish fires so the lifetime subsystem
	// reclaims the bytes everywhere. Idempotent. Returns the IDs whose
	// shard was unreachable so the caller retries them; nil means fully
	// applied.
	ForceReleaseObjects(ids []types.ObjectID) []types.ObjectID
	// PurgeObjects tombstones drained object records (refcount zero, no
	// copies). Returns the IDs not purged — undrained yet or shard
	// unreachable — so the caller retries; nil means fully purged.
	PurgeObjects(ids []types.ObjectID) []types.ObjectID
	// PurgeJobTasks tombstones the job's terminal task records (and their
	// durable markers), returning how many were deleted and whether the
	// scan covered the whole table. Called only after the job is Stopped
	// and its grace period elapsed.
	PurgeJobTasks(job types.JobID) (int, bool)

	// Spillover queue (Section 3.2.2): local schedulers publish tasks they
	// decline; global schedulers subscribe.
	PublishSpill(spec types.TaskSpec)
	SubscribeSpill() Sub

	// Node table and membership events.
	RegisterNode(info types.NodeInfo)
	Heartbeat(id types.NodeID, queueLen int, avail types.Resources, store types.StoreStats)
	MarkNodeDead(id types.NodeID)
	// CASNodeState atomically advances a node's drain state machine
	// (Active→Draining→Drained, with Draining→Active as the rollback) iff
	// the current state is in `from`, reporting success. The autoscaler's
	// drain decision, the node's own Drained commit, and operator aborts
	// all race through this CAS, so exactly one contender wins each
	// transition; every win publishes the updated record on the node
	// channel (schedulers fence placement, the node starts its drain).
	CASNodeState(id types.NodeID, from []types.NodeState, to types.NodeState) bool
	GetNode(id types.NodeID) (types.NodeInfo, bool)
	Nodes() []types.NodeInfo
	SubscribeNodeEvents() Sub

	// Function table.
	RegisterFunction(info FunctionInfo)
	HasFunction(name string) bool
	Functions() []FunctionInfo

	// Event log (R7).
	LogEvent(ev types.Event)
	Events() []types.Event
}

// TelemetrySnapshot is a node's most recent published metrics snapshot as
// held by the control plane.
type TelemetrySnapshot struct {
	Node types.NodeID
	AtNs int64 // control-plane clock when published
	Snap metrics.Snapshot
}

// TelemetrySink is the optional observability surface of a control plane
// (optional like Pinger, so API fakes in tests need not implement it).
// Nodes publish a metrics snapshot plus their drained span buffers with
// each heartbeat; dashboards and the profiler read the aggregate back.
// Telemetry is deliberately ephemeral — held in memory, never WAL'd — a
// restarted shard simply repopulates from the next heartbeats (DESIGN.md
// §11).
type TelemetrySink interface {
	// PublishTelemetry replaces the node's snapshot and appends spans to
	// the control plane's bounded span ring.
	PublishTelemetry(id types.NodeID, snap metrics.Snapshot, spans []metrics.SpanRecord)
	// Telemetry returns the latest snapshot per live publisher.
	Telemetry() []TelemetrySnapshot
	// Spans returns the buffered data-plane spans (oldest first per shard;
	// cross-shard order is unspecified — consumers sort by StartNs).
	Spans() []metrics.SpanRecord
}

// Pinger is optionally implemented by API implementations that can probe
// control-plane liveness. Callers that see a failed read can distinguish
// "the record does not exist" from "the control plane (or the shard owning
// the record) is temporarily unreachable" — the difference between a
// permanent error and a retryable one (see fault.Reconstructor).
type Pinger interface {
	// Ping reports whether the control plane is currently reachable. For a
	// sharded deployment this means every shard answers.
	Ping() bool
}

// Control-plane key and channel naming. Exact-match keys hashed across
// shards, as Section 3.2.1 prescribes.
const (
	keyTask   = "task:"   // + TaskID hex -> TaskState
	keyObject = "obj:"    // + ObjectID hex -> ObjectInfo
	keyNode   = "node:"   // + NodeID hex -> NodeInfo
	keyFunc   = "func:"   // + name -> FunctionInfo
	keyGroup  = "pg:"     // + PlacementGroupID hex -> PlacementGroupInfo
	keyJob    = "jobrec:" // + JobID hex -> JobInfo
	keyEvents = "events:" // + NodeID hex -> list of Event

	// keyMetaEpoch stores the cluster clock epoch (unix nanoseconds) so
	// NowNs stays monotonic across control-plane incarnations.
	keyMetaEpoch = "meta:epoch"

	// Index keys: durable marker sets maintained on state transitions so
	// the rescue sweeps stay O(candidates) instead of O(history). Both are
	// written by the Store itself, so in a sharded deployment each marker
	// lives in the same shard's kv as the record it indexes.
	keyPendIdx = "pendidx:" // + TaskID hex; task currently PENDING
	keyGCIdx   = "gcidx:"   // + ObjectID hex; GC-eligible, not yet drained

	chanObjReady   = "ready:"  // + ObjectID hex; payload = ObjectID bytes
	chanTaskStatus = "tstat:"  // + TaskID hex; payload = [1]byte{status}
	chanSpill      = "spill"   // payload = gob(TaskSpec)
	chanNodes      = "nodes"   // payload = gob(NodeInfo)
	chanObjGC      = "objgc"   // payload = ObjectID bytes; refcount hit zero
	chanGroups     = "pgroups" // payload = gob(PlacementGroupInfo)
	chanJobs       = "jobs"    // payload = encoded JobInfo
)
