package gcs

import (
	"hash/fnv"

	"repro/internal/types"
)

// The control plane can run as a set of independently-failing shard
// services instead of one process (the sharded GCS of the paper's Section
// 3.2.1: "we can shard the database for scalability, as long as we accept
// a slight loss in the semantics"). Each shard owns a partition of the
// keyspace with its own write-ahead log and snapshot; clients route every
// keyed operation through a versioned ShardMap fetched at connect time and
// refreshed whenever a shard stops answering or answers as the wrong
// shard (the redirect case: an address that changed hands between map
// versions).

// ShardInfo describes one control-plane shard service.
type ShardInfo struct {
	// Index is the shard's position in the map; routing hashes into it.
	Index int
	// Addr is the transport address the shard's service listens on.
	Addr string
	// Incarnation counts restarts; it distinguishes a recovered shard from
	// the crashed instance a subscriber was attached to.
	Incarnation int64
	// Alive is the supervisor's view of the shard process.
	Alive bool
}

// ShardMap is the versioned routing table for a sharded control plane.
// The shard count is fixed for the life of the cluster (keys must hash
// stably); restarts bump Version and the dead shard's Incarnation, never
// the geometry.
type ShardMap struct {
	Version int64
	Shards  []ShardInfo
}

// ShardForKey routes a control-plane key (e.g. "task:<hex>") to a shard
// index by FNV-1a hash — the same stable-hash scheme the kv store uses for
// its in-process sub-shards.
func (m ShardMap) ShardForKey(key string) int {
	if len(m.Shards) == 0 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(m.Shards)))
}

// NumShards returns the shard count.
func (m ShardMap) NumShards() int { return len(m.Shards) }

// Routing keys. Every table record and its derived pub/sub channels route
// by the record key, so a publish always happens on the shard that owns
// the record being mutated — which is what lets per-ID subscriptions
// attach to exactly one shard.

// TaskKey is the routing (and storage) key of a task record.
func TaskKey(id types.TaskID) string { return keyTask + id.Hex() }

// ObjectKey is the routing (and storage) key of an object record.
func ObjectKey(id types.ObjectID) string { return keyObject + id.Hex() }

// NodeKey is the routing (and storage) key of a node record.
func NodeKey(id types.NodeID) string { return keyNode + id.Hex() }

// FuncKey is the routing (and storage) key of a function record.
func FuncKey(name string) string { return keyFunc + name }

// GroupKey is the routing (and storage) key of a placement-group record.
func GroupKey(id types.PlacementGroupID) string { return keyGroup + id.Hex() }

// JobKey is the routing (and storage) key of a job record.
func JobKey(id types.JobID) string { return keyJob + id.Hex() }

// EventKey is the routing (and storage) key of a node's event list.
func EventKey(node types.NodeID) string { return keyEvents + node.Hex() }

// Wire methods for the shard-map service (served by the supervisor) and
// per-shard identity checks (served by every shard service).
const (
	// MethodShardMap returns the current ShardMap. The supervisor serves
	// it at the cluster's control-plane address; clients fetch at connect
	// and refresh on failure or redirect.
	MethodShardMap = "gcs.shardMap"
	// MethodShardInfo is served by each shard service and returns its own
	// ShardInfo. Clients verify it after dialing: answering with an
	// unexpected Index is the redirect signal that the client's map is
	// stale.
	MethodShardInfo = "gcs.shard.info"
)
