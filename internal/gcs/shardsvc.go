package gcs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/codec"
	"repro/internal/kv"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// ErrShardDown is what a killed shard service answers until it is
// restarted. Clients holding live connections to a crashed shard see this
// (or a transport error) and fall back to the shard map.
var ErrShardDown = errors.New("gcs: shard down")

// ShardConfig describes one control-plane shard service.
type ShardConfig struct {
	// Index is this shard's slot in the cluster's ShardMap.
	Index int
	// Addr is the transport address to serve on.
	Addr string
	// Network binds the service (Inproc in tests, TCP in deployments).
	Network transport.Network
	// DataDir holds the shard's snapshot and write-ahead log. Required:
	// a shard without durable state cannot survive its own crash.
	DataDir string
	// SubShards is the in-memory kv store's internal shard count
	// (lock-striping, not the cluster-level sharding). Default 4.
	SubShards int
	// DisableEventLog turns off control-plane event logging.
	DisableEventLog bool
	// Metrics, when set, records the shard's WAL append latency
	// ("gcs.wal.append.ns;shard=N"). Nil disables instrumentation.
	Metrics *metrics.Registry
}

// ShardStats is one shard's health row (dashboard /api/shards, rayctl).
type ShardStats struct {
	Index       int    `json:"index"`
	Addr        string `json:"addr"`
	Alive       bool   `json:"alive"`
	Incarnation int64  `json:"incarnation"`
	Restarts    int64  `json:"restarts"`
	Ops         int64  `json:"kv_ops"`
	WALBytes    int64  `json:"wal_bytes"`
	Replayed    int    `json:"replayed_records"`
}

// ShardService runs one control-plane shard: a gcs.Store over a
// write-ahead-logged kv store, served on its own transport address. Kill
// simulates a crash (the service stops answering mid-everything); Restart
// recovers the shard from snapshot + WAL replay as a new incarnation.
type ShardService struct {
	cfg ShardConfig

	mu          sync.Mutex
	store       *Store
	logger      *kv.Logger
	wal         *os.File
	listener    io.Closer
	gate        *shardGate
	alive       bool
	incarnation int64
	restarts    int64
	replayed    int // WAL records replayed at the last recovery
}

// StartShard boots a shard service, recovering any state already in its
// data directory (snapshot, then the WAL's valid prefix — a tail torn by a
// crash mid-append is discarded). Boot checkpoints immediately: the
// recovered state becomes the new snapshot and the WAL restarts empty, so
// recovery cost is bounded by one incarnation's mutations.
func StartShard(cfg ShardConfig) (*ShardService, error) {
	if cfg.Network == nil || cfg.Addr == "" {
		return nil, fmt.Errorf("gcs: shard %d: Network and Addr are required", cfg.Index)
	}
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("gcs: shard %d: DataDir is required (shards are durable)", cfg.Index)
	}
	if cfg.SubShards <= 0 {
		cfg.SubShards = 4
	}
	s := &ShardService{cfg: cfg}
	if err := s.start(); err != nil {
		return nil, err
	}
	return s, nil
}

// start boots one incarnation. Caller holds s.mu or owns s exclusively.
func (s *ShardService) start() error {
	db, replayed, err := kv.RecoverDir(s.cfg.DataDir, s.cfg.SubShards)
	if err != nil {
		return fmt.Errorf("gcs: shard %d recover: %w", s.cfg.Index, err)
	}
	wal, err := kv.OpenWALDir(s.cfg.DataDir)
	if err != nil {
		return fmt.Errorf("gcs: shard %d wal: %w", s.cfg.Index, err)
	}
	logger := kv.NewLogger(db, wal)
	if s.cfg.Metrics != nil {
		logger.SetAppendHistogram(s.cfg.Metrics.Histogram(fmt.Sprintf("gcs.wal.append.ns;shard=%d", s.cfg.Index)))
	}
	// Checkpoint at boot: persist the recovered state as the snapshot and
	// cut the WAL (discarding any torn tail for good).
	if err := kv.Checkpoint(logger, s.cfg.DataDir, wal); err != nil {
		wal.Close()
		return fmt.Errorf("gcs: shard %d checkpoint: %w", s.cfg.Index, err)
	}
	store := RecoverStore(logger)
	store.SetEventLogging(!s.cfg.DisableEventLog)
	// Record and marker writes are separate WAL records; a crash (or torn
	// WAL tail) can strand one side. Recovery reconciles them so the
	// rescue sweeps and GC replay can trust the indexes.
	store.RebuildIndexes()

	gate := newShardGate()
	srv := transport.NewServer()
	reg := gatedRegistrar{
		srv:  srv,
		gate: gate,
		// A WAL write failure means acks would confirm non-durable
		// commits; poison the service and crash it so it restarts from
		// the durable prefix (clients retry with their op tokens).
		poisoned: logger.Failed,
		onPoison: func() { go s.Kill() },
	}
	RegisterService(reg, store)
	incarnation := s.incarnation + 1
	reg.Handle(MethodShardInfo, func([]byte) ([]byte, error) {
		return codec.Encode(ShardInfo{
			Index:       s.cfg.Index,
			Addr:        s.cfg.Addr,
			Incarnation: incarnation,
			Alive:       true,
		})
	})
	listener, err := s.cfg.Network.Listen(s.cfg.Addr, srv)
	if err != nil {
		wal.Close()
		return fmt.Errorf("gcs: shard %d listen: %w", s.cfg.Index, err)
	}

	s.store, s.logger, s.wal = store, logger, wal
	s.gate, s.listener = gate, listener
	s.alive = true
	s.incarnation = incarnation
	s.replayed = replayed
	return nil
}

// Index returns the shard's map slot.
func (s *ShardService) Index() int { return s.cfg.Index }

// Addr returns the shard's service address.
func (s *ShardService) Addr() string { return s.cfg.Addr }

// Alive reports whether the shard is currently serving.
func (s *ShardService) Alive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alive
}

// Incarnation returns the current (or last) incarnation number.
func (s *ShardService) Incarnation() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.incarnation
}

// Store exposes the shard's table layer while alive (nil when killed).
// Supervisor-level recovery and tests use it; clients go through the map.
func (s *ShardService) Store() *Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.alive {
		return nil
	}
	return s.store
}

// Kill simulates the shard process dying: every open subscription stream
// collapses, in-flight and future calls fail with ErrShardDown, and the
// in-memory state is abandoned. Durable state (snapshot + WAL) survives
// for Restart, exactly like a SIGKILL'd process's files.
func (s *ShardService) Kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.killLocked()
}

// killLocked is Kill's body; caller holds s.mu.
func (s *ShardService) killLocked() {
	if !s.alive {
		return
	}
	s.alive = false
	s.gate.kill()
	if s.listener != nil {
		s.listener.Close()
	}
	// Quiesce before closing the WAL fd: SetWriter waits out any in-flight
	// atomic log+apply (its writes reached the file and the gate's
	// post-commit check decides their acks), and redirecting stragglers to
	// Discard means a goroutine still holding the old fd can never write
	// into the file after the next incarnation has truncated and re-fenced
	// it. A mutation diverted to Discard is never acked — the gate was
	// already killed — so nothing non-durable is ever confirmed.
	s.logger.SetWriter(io.Discard)
	s.wal.Close()
	s.store, s.logger, s.wal = nil, nil, nil
}

// Restart recovers a killed shard from its snapshot + WAL as a fresh
// incarnation on the same address. Restarting a live shard is a no-op.
func (s *ShardService) Restart() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.alive {
		return nil
	}
	if err := s.start(); err != nil {
		return err
	}
	s.restarts++
	return nil
}

// Checkpoint snapshots the shard's current state and truncates its WAL,
// atomically with respect to concurrent mutations. A failed checkpoint
// may leave the WAL unfenced relative to the new snapshot — continuing to
// log to it would make the next recovery silently discard every later
// mutation — so on error the shard crash-restarts from disk immediately
// (bounded loss: suppressed acks are retried by clients) instead of
// serving on a poisoned log.
func (s *ShardService) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.alive {
		return ErrShardDown
	}
	err := kv.Checkpoint(s.logger, s.cfg.DataDir, s.wal)
	if err == nil {
		return nil
	}
	s.killLocked()
	if rerr := s.start(); rerr != nil {
		return fmt.Errorf("gcs: shard %d checkpoint failed (%v) and restart failed: %w", s.cfg.Index, err, rerr)
	}
	s.restarts++
	return fmt.Errorf("gcs: shard %d checkpoint failed (recovered by restart): %w", s.cfg.Index, err)
}

// Close shuts the shard down for good (graceful: state stays on disk).
func (s *ShardService) Close() { s.Kill() }

// Stats snapshots the shard's health row.
func (s *ShardService) Stats() ShardStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ShardStats{
		Index:       s.cfg.Index,
		Addr:        s.cfg.Addr,
		Alive:       s.alive,
		Incarnation: s.incarnation,
		Restarts:    s.restarts,
		Replayed:    s.replayed,
	}
	if s.alive {
		st.Ops = s.store.DB().Ops()
	}
	if fi, err := os.Stat(filepath.Join(s.cfg.DataDir, kv.WALName)); err == nil {
		st.WALBytes = fi.Size()
	}
	return st
}

// --- kill gate ---

// shardGate lets a "crashed" shard stop answering even for clients that
// hold live connections (the in-process network dispatches straight into
// the server object, so closing the listener alone is not enough).
type shardGate struct {
	once sync.Once
	dead chan struct{}
}

func newShardGate() *shardGate { return &shardGate{dead: make(chan struct{})} }

func (g *shardGate) kill() { g.once.Do(func() { close(g.dead) }) }

func (g *shardGate) killed() bool {
	select {
	case <-g.dead:
		return true
	default:
		return false
	}
}

// gatedRegistrar wraps every handler with the gate check; streams get a
// wrapped ServerStream whose Done also fires on kill, so long-lived
// subscription forwarders exit promptly when the shard "crashes".
type gatedRegistrar struct {
	srv  *transport.Server
	gate *shardGate
	// poisoned reports that the WAL can no longer record mutations (disk
	// failure); acks must stop and onPoison crash-restarts the shard.
	poisoned func() bool
	onPoison func()
}

func (r gatedRegistrar) down() bool {
	if r.gate.killed() {
		return true
	}
	if r.poisoned != nil && r.poisoned() {
		if r.onPoison != nil {
			r.onPoison()
		}
		return true
	}
	return false
}

func (r gatedRegistrar) Handle(method string, h transport.Handler) {
	r.srv.Handle(method, func(payload []byte) ([]byte, error) {
		if r.down() {
			return nil, ErrShardDown
		}
		out, err := h(payload)
		// Post-commit check: a kill (or WAL failure) that raced this
		// handler may mean its log write never hit disk, so never ack
		// across it — a suppressed ack makes the client retry (refcount
		// deltas and CAS claims dedup via their op tokens; everything
		// else is idempotent), whereas an ack for a non-durable commit
		// would be state loss.
		if r.down() {
			return nil, ErrShardDown
		}
		return out, err
	})
}

func (r gatedRegistrar) HandleStream(method string, h transport.StreamHandler) {
	g := r.gate
	r.srv.HandleStream(method, func(payload []byte, stream transport.ServerStream) error {
		if g.killed() {
			return ErrShardDown
		}
		return h(payload, newGatedStream(stream, g))
	})
}

type gatedStream struct {
	inner transport.ServerStream
	gate  *shardGate
	done  chan struct{}
}

func newGatedStream(inner transport.ServerStream, gate *shardGate) *gatedStream {
	gs := &gatedStream{inner: inner, gate: gate, done: make(chan struct{})}
	go func() {
		select {
		case <-inner.Done():
		case <-gate.dead:
		}
		close(gs.done)
	}()
	return gs
}

// Send implements transport.ServerStream.
func (s *gatedStream) Send(payload []byte) error {
	if s.gate.killed() {
		return transport.ErrClosed
	}
	return s.inner.Send(payload)
}

// Done implements transport.ServerStream.
func (s *gatedStream) Done() <-chan struct{} { return s.done }
