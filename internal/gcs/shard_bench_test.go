package gcs

import (
	"fmt"
	"testing"

	"repro/internal/codec"
	"repro/internal/kv"
	"repro/internal/transport"
	"repro/internal/types"
)

// populateShardDir fills a shard data directory with nTasks task records
// and nObjs object records (snapshot after checkpoint, WAL afterwards),
// then kills the shard, leaving recoverable state on disk.
func populateShardDir(b *testing.B, nw *transport.Inproc, dir string, addr string, snapRecords, walRecords int) {
	b.Helper()
	svc, err := StartShard(ShardConfig{Index: 0, Addr: addr, Network: nw, DataDir: dir, DisableEventLog: true})
	if err != nil {
		b.Fatal(err)
	}
	st := svc.Store()
	fill := func(n, base int) {
		for i := 0; i < n; i++ {
			var task types.TaskID
			copy(task[:], fmt.Sprintf("t%07d", base+i))
			st.AddTask(types.TaskState{Spec: types.TaskSpec{ID: task, Function: "f"}, Status: types.TaskFinished})
			var obj types.ObjectID
			copy(obj[:], fmt.Sprintf("o%07d", base+i))
			st.EnsureObject(obj, task)
			st.ModifyObjectRefCount(obj, 1)
		}
	}
	fill(snapRecords, 0)
	if err := svc.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	fill(walRecords, snapRecords)
	svc.Kill()
}

// BenchmarkShardRecovery measures E16: the wall-clock cost of restarting a
// killed control-plane shard — snapshot restore + WAL replay + boot
// checkpoint + relisten — for a shard holding ~3 kv records per entry.
// Each iteration restarts from the same on-disk state (Restart checkpoints
// at boot, so iterations after the first recover from snapshot only; the
// first iteration's WAL replay cost is isolated by BenchmarkWALReplay).
func BenchmarkShardRecovery(b *testing.B) {
	for _, entries := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("entries-%d", entries), func(b *testing.B) {
			nw := transport.NewInproc(0)
			dir := b.TempDir()
			addr := fmt.Sprintf("bench-shard-%d", entries)
			populateShardDir(b, nw, dir, addr, entries, 0)
			svc, err := StartShard(ShardConfig{Index: 0, Addr: addr, Network: nw, DataDir: dir, DisableEventLog: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				svc.Kill()
				if err := svc.Restart(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			svc.Close()
		})
	}
}

// BenchmarkWALReplay measures the WAL half of recovery: applying a log of
// task-table puts to a fresh store (kv.RecoverDir with no snapshot).
func BenchmarkWALReplay(b *testing.B) {
	for _, records := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("records-%d", records), func(b *testing.B) {
			dir := b.TempDir()
			db, _, err := kv.RecoverDir(dir, 4)
			if err != nil {
				b.Fatal(err)
			}
			wal, err := kv.OpenWALDir(dir)
			if err != nil {
				b.Fatal(err)
			}
			l := kv.NewLogger(db, wal)
			payload := codec.MustEncode(types.TaskState{Spec: types.TaskSpec{Function: "f"}, Status: types.TaskFinished})
			for i := 0; i < records; i++ {
				l.Put(fmt.Sprintf("task:%08d", i), payload)
			}
			wal.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, n, err := kv.RecoverDir(dir, 4); err != nil || n != records {
					b.Fatalf("replayed %d, %v", n, err)
				}
			}
		})
	}
}
