package gcs

import (
	"repro/internal/codec"
	"repro/internal/types"
)

// Job table (DESIGN.md §14). Job records are durable like every other
// control-plane record: all writes flow through the kv store, so on a
// sharded deployment they are WAL'd and snapshotted with the shard that
// owns them. The Stopped record is deliberately never deleted — it is the
// tombstone that fences replayed submissions after the job's task and
// object records have been purged.

// CreateJob implements API: exactly-once insertion keyed by job ID. A
// duplicate create (client retry after a crash suppressed the ack) returns
// false with the original record intact.
func (s *Store) CreateJob(spec types.JobSpec) bool {
	now := s.NowNs()
	info := types.JobInfo{
		Spec:             spec,
		State:            types.JobRunning,
		CreatedNs:        now,
		LastTransitionNs: now,
	}
	ok := s.db.PutIfAbsent(keyJob+spec.ID.Hex(), codec.MustEncode(info))
	if ok {
		s.db.Publish(chanJobs, codec.MustEncode(info))
		s.logEvent(types.Event{Kind: "job-create", Detail: spec.ID.String() + " " + spec.Name})
	}
	return ok
}

// GetJob implements API.
func (s *Store) GetJob(id types.JobID) (types.JobInfo, bool) {
	raw, ok := s.db.Get(keyJob + id.Hex())
	if !ok {
		return types.JobInfo{}, false
	}
	info, err := codec.DecodeAs[types.JobInfo](raw)
	if err != nil {
		return types.JobInfo{}, false
	}
	return info, true
}

// Jobs implements API (inspection scan; the reclaim pass sweeps it, so a
// job whose stop event was dropped is still reclaimed eventually).
func (s *Store) Jobs() []types.JobInfo {
	keys := s.db.Keys(keyJob)
	out := make([]types.JobInfo, 0, len(keys))
	for _, k := range keys {
		if raw, ok := s.db.Get(k); ok {
			if info, err := codec.DecodeAs[types.JobInfo](raw); err == nil {
				out = append(out, info)
			}
		}
	}
	return out
}

// CASJobState implements API.
func (s *Store) CASJobState(id types.JobID, from []types.JobState, to types.JobState) bool {
	return s.CASJobStateOp(id, from, to, 0)
}

// CASJobStateOp is CASJobState with an idempotency token (0 = no dedup),
// mirroring CASTaskStatusOp: a retried CAS whose original commit survived a
// shard crash is recognized by its token in the record's durable MutOps
// ring and reported won, so the caller (a StopJob retry, the reclaim pass's
// Stopping→Stopped commit) proceeds instead of treating its own earlier
// commit as a lost race.
func (s *Store) CASJobStateOp(id types.JobID, from []types.JobState, to types.JobState, op uint64) bool {
	now := s.NowNs()
	won := false
	dupWin := false
	var next types.JobInfo
	s.db.Update(keyJob+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		info, err := codec.DecodeAs[types.JobInfo](cur)
		if err != nil {
			return nil, false
		}
		if op != 0 {
			for _, seen := range info.MutOps {
				if seen == op {
					dupWin = true // this exact CAS already applied
					return nil, false
				}
			}
		}
		eligible := false
		for _, f := range from {
			if info.State == f {
				eligible = true
				break
			}
		}
		if !eligible {
			return nil, false
		}
		if op != 0 {
			info.MutOps = append(info.MutOps, op)
			if len(info.MutOps) > refOpHistory {
				info.MutOps = info.MutOps[len(info.MutOps)-refOpHistory:]
			}
		}
		info.State = to
		info.LastTransitionNs = now
		switch to {
		case types.JobStopping:
			info.StoppingNs = now
		case types.JobStopped:
			info.StoppedNs = now
		case types.JobRunning:
			// Rollback (operator abort of a stop that has not buried
			// anything yet): the stop never happened.
			info.StoppingNs = 0
		}
		won = true
		next = info
		return codec.MustEncode(info), true
	})
	if won {
		s.db.Publish(chanJobs, codec.MustEncode(next))
		s.logEvent(types.Event{Kind: "job-cas:" + to.String(), Detail: id.String()})
	}
	return won || dupWin
}

// MarkJobPurged implements API: stamp PurgedNs on a Stopped job whose task
// and object records have been tombstoned. Idempotent — a second stamp (or
// a retry whose ack died with a shard) returns false without touching the
// record.
func (s *Store) MarkJobPurged(id types.JobID) bool {
	won := false
	var next types.JobInfo
	s.db.Update(keyJob+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		info, err := codec.DecodeAs[types.JobInfo](cur)
		if err != nil || info.State != types.JobStopped || info.PurgedNs != 0 {
			return nil, false
		}
		now := s.NowNs()
		info.PurgedNs = now
		info.LastTransitionNs = now
		won = true
		next = info
		return codec.MustEncode(info), true
	})
	if won {
		s.db.Publish(chanJobs, codec.MustEncode(next))
		s.logEvent(types.Event{Kind: "job-purged", Detail: id.String()})
	}
	return won
}

// SubscribeJobs implements API.
func (s *Store) SubscribeJobs() Sub { return s.db.Subscribe(chanJobs) }

// JobTasks implements API: the reclaim pass's source of truth. Scans the
// task table for records attributed to the job — any status, so one scan
// serves both the bury phase (live tasks to fail) and the purge phase
// (terminal records to tombstone, object IDs to derive). The in-process
// store always has a complete view.
func (s *Store) JobTasks(job types.JobID) ([]types.TaskState, bool) {
	var out []types.TaskState
	for _, k := range s.db.Keys(keyTask) {
		raw, ok := s.db.Get(k)
		if !ok {
			continue
		}
		st, err := codec.DecodeAs[types.TaskState](raw)
		if err != nil {
			continue
		}
		if st.Spec.Job == job {
			out = append(out, st)
		}
	}
	return out, true
}

// ForceReleaseObjects implements API: the job-stop reclaim hammer. Each
// object's count is forced to zero and its Holders attribution dropped, as
// if every holder's release had flushed; objects with live copies become
// GC-eligible (EverRetained is set so even never-retained outputs are
// reclaimed — the job is gone, nobody can ever reference them again). The
// in-process store cannot fail partially, so the failed set is always nil.
func (s *Store) ForceReleaseObjects(ids []types.ObjectID) []types.ObjectID {
	for _, id := range ids {
		s.forceReleaseObject(id)
	}
	return nil
}

// forceReleaseObject is one object's share of a force release. Idempotent:
// an already-zeroed object only refires the (crash-droppable) GC publish if
// its copies have not drained yet.
func (s *Store) forceReleaseObject(id types.ObjectID) {
	gc := false
	s.db.Update(keyObject+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		info, err := codec.DecodeAs[types.ObjectInfo](cur)
		if err != nil {
			return nil, false
		}
		changed := info.RefCount != 0 || len(info.Holders) != 0 || !info.EverRetained
		info.RefCount = 0
		info.Holders = nil
		info.EverRetained = true
		gc = len(info.Locations) > 0
		if !changed {
			return nil, false // already released; just redo the side effects
		}
		return codec.MustEncode(info), true
	})
	if gc {
		s.db.Put(keyGCIdx+id.Hex(), nil)
		s.db.Publish(chanObjGC, id[:])
		s.logEvent(types.Event{Kind: "job-force-release", Object: id})
	}
}

// PurgeObjects implements API: tombstone drained object records. A record
// still holding copies or references is skipped (returned for retry) — the
// force release and the lifetime GC it triggers must drain it first. The
// kv delete is WAL'd, so the tombstone survives shard restarts.
func (s *Store) PurgeObjects(ids []types.ObjectID) []types.ObjectID {
	var remaining []types.ObjectID
	for _, id := range ids {
		if raw, ok := s.db.Get(keyObject + id.Hex()); ok {
			info, err := codec.DecodeAs[types.ObjectInfo](raw)
			if err == nil && (info.RefCount != 0 || len(info.Locations) != 0) {
				// Not drained yet: retry after GC catches up. Re-kick the GC
				// publish — the original event is crash-droppable, and after
				// the job commits Stopped nothing else refires it.
				if info.RefCount == 0 && len(info.Locations) != 0 {
					s.db.Put(keyGCIdx+id.Hex(), nil)
					s.db.Publish(chanObjGC, id[:])
				}
				remaining = append(remaining, id)
				continue
			}
		}
		s.db.Delete(keyObject + id.Hex())
		s.db.Delete(keyGCIdx + id.Hex())
	}
	return remaining
}

// PurgeJobTasks implements API: tombstone the job's terminal task records
// and their durable markers. Live records are left alone — the reclaim
// pass buries them first and re-runs the purge. The in-process store
// always has a complete view.
func (s *Store) PurgeJobTasks(job types.JobID) (int, bool) {
	purged := 0
	for _, k := range s.db.Keys(keyTask) {
		raw, ok := s.db.Get(k)
		if !ok {
			continue
		}
		st, err := codec.DecodeAs[types.TaskState](raw)
		if err != nil {
			continue
		}
		if st.Spec.Job != job || !st.Status.Terminal() {
			continue
		}
		s.db.Delete(k)
		s.db.Delete(keyPendIdx + st.Spec.ID.Hex())
		purged++
	}
	if purged > 0 {
		s.logEvent(types.Event{Kind: "job-purge-tasks", Detail: job.String()})
	}
	return purged, true
}
