package gcs

import (
	"repro/internal/codec"
	"repro/internal/types"
)

// Placement-group table (DESIGN.md §9). Group records are durable like
// every other control-plane record: all writes flow through the kv store,
// so on a sharded deployment they are WAL'd and snapshotted with the shard
// that owns them, and gang-scheduling state survives shard failover.

// CreatePlacementGroup implements API: exactly-once insertion keyed by
// group ID. A duplicate create (client retry after a crash suppressed the
// ack) returns false with the original record intact.
func (s *Store) CreatePlacementGroup(spec types.PlacementGroupSpec) bool {
	now := s.NowNs()
	info := types.PlacementGroupInfo{
		Spec:             spec,
		State:            types.GroupPending,
		CreatedNs:        now,
		LastTransitionNs: now,
	}
	ok := s.db.PutIfAbsent(keyGroup+spec.ID.Hex(), codec.MustEncode(info))
	if ok {
		s.db.Publish(chanGroups, codec.MustEncode(info))
		s.logEvent(types.Event{Kind: "pg-create", Detail: spec.ID.String() + " " + spec.Strategy.String()})
	}
	return ok
}

// RemovePlacementGroup implements API: transition to the terminal Removed
// state from any live state. Removal is idempotent — a second remove (or a
// retry of one whose ack died with a shard) returns false without touching
// the record. The gang pass observes the transition and releases the
// group's reservations; local schedulers fail its pending member tasks.
func (s *Store) RemovePlacementGroup(id types.PlacementGroupID) bool {
	var removed types.PlacementGroupInfo
	won := false
	s.db.Update(keyGroup+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		info, err := codec.DecodeAs[types.PlacementGroupInfo](cur)
		if err != nil || info.State == types.GroupRemoved {
			return nil, false
		}
		now := s.NowNs()
		info.State = types.GroupRemoved
		info.BundleNodes = nil
		info.ClaimToken = 0
		info.RemovedNs = now
		info.LastTransitionNs = now
		removed, won = info, true
		return codec.MustEncode(info), true
	})
	if won {
		s.db.Publish(chanGroups, codec.MustEncode(removed))
		s.logEvent(types.Event{Kind: "pg-remove", Detail: id.String()})
	}
	return won
}

// GetPlacementGroup implements API.
func (s *Store) GetPlacementGroup(id types.PlacementGroupID) (types.PlacementGroupInfo, bool) {
	raw, ok := s.db.Get(keyGroup + id.Hex())
	if !ok {
		return types.PlacementGroupInfo{}, false
	}
	info, err := codec.DecodeAs[types.PlacementGroupInfo](raw)
	if err != nil {
		return types.PlacementGroupInfo{}, false
	}
	return info, true
}

// PlacementGroups implements API (inspection scan; the gang pass sweeps it,
// so a group whose pub/sub event was dropped is still placed eventually).
func (s *Store) PlacementGroups() []types.PlacementGroupInfo {
	keys := s.db.Keys(keyGroup)
	out := make([]types.PlacementGroupInfo, 0, len(keys))
	for _, k := range keys {
		if raw, ok := s.db.Get(k); ok {
			if info, err := codec.DecodeAs[types.PlacementGroupInfo](raw); err == nil {
				out = append(out, info)
			}
		}
	}
	return out
}

// CASPlacementGroupState implements API.
func (s *Store) CASPlacementGroupState(id types.PlacementGroupID, from []types.PlacementGroupState, to types.PlacementGroupState, bundleNodes []types.NodeID) bool {
	return s.CASPlacementGroupStateOp(id, from, to, bundleNodes, 0, 0)
}

// CASPlacementGroupStateClaim implements API: the claim-token form of the
// gang CAS. A transition to Placing records the claimant's token; a
// transition to Placed requires the caller's token to match the recorded
// claim — so a claimant stalled past the stale-claim sweep cannot commit
// over a successor's claim (the successor's Pending→Placing rewrote the
// token). Rollbacks to Pending clear the token.
func (s *Store) CASPlacementGroupStateClaim(id types.PlacementGroupID, from []types.PlacementGroupState, to types.PlacementGroupState, bundleNodes []types.NodeID, claim uint64) bool {
	return s.CASPlacementGroupStateOp(id, from, to, bundleNodes, claim, 0)
}

// CASPlacementGroupStateOp is the full gang CAS: claim token (0 = no claim
// bookkeeping) plus idempotency token (0 = no dedup), the latter mirroring
// CASTaskStatusOp: a retried claim whose original commit survived a shard
// crash is recognized by its token and reported won, so the gang pass
// proceeds instead of treating its own earlier commit as a lost race
// (which would strand the group in Placing).
func (s *Store) CASPlacementGroupStateOp(id types.PlacementGroupID, from []types.PlacementGroupState, to types.PlacementGroupState, bundleNodes []types.NodeID, claim uint64, op uint64) bool {
	now := s.NowNs()
	won := false
	dupWin := false
	var next types.PlacementGroupInfo
	s.db.Update(keyGroup+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		info, err := codec.DecodeAs[types.PlacementGroupInfo](cur)
		if err != nil {
			return nil, false
		}
		if op != 0 {
			for _, seen := range info.MutOps {
				if seen == op {
					dupWin = true // this exact CAS already applied
					return nil, false
				}
			}
		}
		eligible := false
		for _, f := range from {
			if info.State == f {
				eligible = true
				break
			}
		}
		if !eligible {
			return nil, false
		}
		// Claim fencing: the Placed commit must come from whoever holds the
		// current Placing claim. A recorded token that does not match the
		// caller's means the claim changed hands (the stale-claim sweep
		// reset the group and a successor re-claimed it) — the stale
		// claimant's commit loses outright instead of installing a
		// placement whose reservations belong to nobody. Token-less commits
		// (claim 0) only pass while no claim is recorded, preserving legacy
		// callers without weakening the fence.
		if to == types.GroupPlaced && info.ClaimToken != claim {
			return nil, false
		}
		// The same fence guards a tokened rollback out of Placing: a stale
		// claimant unwinding its failed pass must not yank a successor's
		// live claim. The sweep rolls back token-less (claim 0), which
		// stays a force — it exists to break claims whose owner died.
		if to == types.GroupPending && info.State == types.GroupPlacing &&
			claim != 0 && info.ClaimToken != claim {
			return nil, false
		}
		if op != 0 {
			info.MutOps = append(info.MutOps, op)
			if len(info.MutOps) > refOpHistory {
				info.MutOps = info.MutOps[len(info.MutOps)-refOpHistory:]
			}
		}
		info.State = to
		info.LastTransitionNs = now
		switch to {
		case types.GroupPlacing:
			info.ClaimToken = claim
		case types.GroupPlaced:
			info.BundleNodes = bundleNodes
			info.PlacedNs = now
		case types.GroupPending:
			info.BundleNodes = nil
			info.ClaimToken = 0
		case types.GroupRemoved:
			info.BundleNodes = nil
			info.ClaimToken = 0
			info.RemovedNs = now
		}
		won = true
		next = info
		return codec.MustEncode(info), true
	})
	if won {
		s.db.Publish(chanGroups, codec.MustEncode(next))
		s.logEvent(types.Event{Kind: "pg-cas:" + to.String(), Detail: id.String()})
	}
	return won || dupWin
}

// SubscribePlacementGroups implements API.
func (s *Store) SubscribePlacementGroups() Sub { return s.db.Subscribe(chanGroups) }
