package gcs

import (
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/types"
)

// maxStoredSpans bounds the control plane's span ring per Store (so per
// shard in a sharded deployment). Profiling wants recent history, not an
// unbounded archive; overflow drops oldest.
const maxStoredSpans = 32768

// telemetry is the Store's in-memory observability state. It is
// deliberately NOT written to the kv database: snapshots are re-published
// on every heartbeat and spans are a bounded profiling buffer, so durably
// logging either would bloat the WAL with data that is stale the moment a
// shard recovers (DESIGN.md §11).
type telemetry struct {
	mu    sync.Mutex
	nodes map[types.NodeID]TelemetrySnapshot
	spans []metrics.SpanRecord // ring
	start int
	n     int
}

func (t *telemetry) publish(id types.NodeID, atNs int64, snap metrics.Snapshot, spans []metrics.SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.nodes == nil {
		t.nodes = make(map[types.NodeID]TelemetrySnapshot)
	}
	t.nodes[id] = TelemetrySnapshot{Node: id, AtNs: atNs, Snap: snap}
	if t.spans == nil {
		t.spans = make([]metrics.SpanRecord, maxStoredSpans)
	}
	for _, sp := range spans {
		if t.n == len(t.spans) {
			t.spans[t.start] = sp
			t.start = (t.start + 1) % len(t.spans)
		} else {
			t.spans[(t.start+t.n)%len(t.spans)] = sp
			t.n++
		}
	}
}

func (t *telemetry) snapshots() []TelemetrySnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TelemetrySnapshot, 0, len(t.nodes))
	for _, s := range t.nodes {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node.String() < out[j].Node.String() })
	return out
}

func (t *telemetry) all() []metrics.SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]metrics.SpanRecord, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.spans[(t.start+i)%len(t.spans)]
	}
	return out
}

// PublishTelemetry implements TelemetrySink.
func (s *Store) PublishTelemetry(id types.NodeID, snap metrics.Snapshot, spans []metrics.SpanRecord) {
	s.telemetry.publish(id, s.NowNs(), snap, spans)
}

// Telemetry implements TelemetrySink.
func (s *Store) Telemetry() []TelemetrySnapshot { return s.telemetry.snapshots() }

// Spans implements TelemetrySink.
func (s *Store) Spans() []metrics.SpanRecord { return s.telemetry.all() }
