package gcs

import (
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/types"
)

// SupervisorConfig configures a control-plane supervisor.
type SupervisorConfig struct {
	// Shards is how many shard services to run (>= 1). Fixed for the life
	// of the data directory: keys hash into it.
	Shards int
	// Network binds the shard services and the map service.
	Network transport.Network
	// MapAddr is where the supervisor serves the shard map.
	MapAddr string
	// ShardAddrs lists each shard's service address. Optional: when empty,
	// addresses derive as MapAddr-shard-<i> (in-process networks).
	ShardAddrs []string
	// DataDir holds one subdirectory per shard (shard-<i>) with that
	// shard's snapshot and WAL. Required.
	DataDir string
	// SubShards is each shard's internal kv lock-striping count.
	SubShards int
	// AutoRestart, when positive, is the supervision interval: a loop
	// restarts dead shards this often. Zero means manual RestartShard only.
	AutoRestart time.Duration
	// CheckpointWALBytes, when positive, bounds each shard's WAL: the
	// supervision loop checkpoints (snapshot + WAL truncate) any live shard
	// whose log has grown past this many bytes, so recovery replay time
	// stays proportional to the threshold rather than to uptime. Zero
	// disables size-triggered checkpoints (manual CheckpointAll only).
	CheckpointWALBytes int64
	// DisableEventLog turns off control-plane event logging.
	DisableEventLog bool
	// Metrics, when set, is threaded to every shard for WAL append
	// latency histograms. Nil disables instrumentation.
	Metrics *metrics.Registry
}

// Supervisor runs the sharded control plane: it boots every shard service,
// serves the versioned shard map, and — the failover half of Section
// 3.2.1 — restarts dead shards from their snapshot + WAL so the control
// plane as a whole survives any single shard's crash.
type Supervisor struct {
	cfg SupervisorConfig

	mu       sync.Mutex
	shards   []*ShardService
	version  int64
	listener io.Closer

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewSupervisor boots the shard services and the map service. Booting over
// a pre-existing DataDir recovers every shard from disk and then runs the
// cross-shard liveness reset (the sharded ResetAfterRecovery): nodes of
// the previous incarnation are marked dead and their object locations
// dropped, so sole copies transition to Lost and lineage replay can
// regenerate them. On a fresh DataDir the reset is a no-op.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("gcs: supervisor needs at least 1 shard")
	}
	if cfg.Network == nil || cfg.MapAddr == "" || cfg.DataDir == "" {
		return nil, fmt.Errorf("gcs: supervisor needs Network, MapAddr, and DataDir")
	}
	if len(cfg.ShardAddrs) == 0 {
		cfg.ShardAddrs = make([]string, cfg.Shards)
		for i := range cfg.ShardAddrs {
			cfg.ShardAddrs[i] = fmt.Sprintf("%s-shard-%d", cfg.MapAddr, i)
		}
	}
	if len(cfg.ShardAddrs) != cfg.Shards {
		return nil, fmt.Errorf("gcs: %d shard addrs for %d shards", len(cfg.ShardAddrs), cfg.Shards)
	}

	s := &Supervisor{cfg: cfg, version: 1, stop: make(chan struct{})}
	for i := 0; i < cfg.Shards; i++ {
		svc, err := StartShard(ShardConfig{
			Index:           i,
			Addr:            cfg.ShardAddrs[i],
			Network:         cfg.Network,
			DataDir:         filepath.Join(cfg.DataDir, fmt.Sprintf("shard-%d", i)),
			SubShards:       cfg.SubShards,
			DisableEventLog: cfg.DisableEventLog,
			Metrics:         cfg.Metrics,
		})
		if err != nil {
			s.Close()
			return nil, err
		}
		s.shards = append(s.shards, svc)
	}
	s.resetAfterRecovery()

	srv := transport.NewServer()
	srv.Handle(MethodShardMap, func([]byte) ([]byte, error) {
		return codec.Encode(s.Map())
	})
	l, err := cfg.Network.Listen(cfg.MapAddr, srv)
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("gcs: serve shard map: %w", err)
	}
	s.listener = l

	interval := cfg.AutoRestart
	if interval <= 0 && cfg.CheckpointWALBytes > 0 {
		// Size-triggered checkpoints without auto-restart still need the
		// supervision tick; WAL growth tolerates a coarse check.
		interval = 50 * time.Millisecond
	}
	if interval > 0 {
		s.wg.Add(1)
		go s.superviseLoop(interval)
	}
	return s, nil
}

// Map snapshots the current shard map.
func (s *Supervisor) Map() ShardMap {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := ShardMap{Version: s.version, Shards: make([]ShardInfo, len(s.shards))}
	for i, svc := range s.shards {
		m.Shards[i] = ShardInfo{
			Index:       i,
			Addr:        svc.Addr(),
			Incarnation: svc.Incarnation(),
			Alive:       svc.Alive(),
		}
	}
	return m
}

// NumShards returns the shard count.
func (s *Supervisor) NumShards() int { return s.cfg.Shards }

// Shard exposes shard i's service (tests, tools).
func (s *Supervisor) Shard(i int) *ShardService { return s.shards[i] }

// KillShard crash-fails shard i and bumps the map version.
func (s *Supervisor) KillShard(i int) {
	s.shards[i].Kill()
	s.bumpVersion()
}

// RestartShard recovers shard i from snapshot + WAL as a new incarnation.
func (s *Supervisor) RestartShard(i int) error {
	if err := s.shards[i].Restart(); err != nil {
		return err
	}
	s.bumpVersion()
	return nil
}

// CheckpointAll snapshots every live shard and truncates its WAL.
func (s *Supervisor) CheckpointAll() error {
	for _, svc := range s.shards {
		if !svc.Alive() {
			continue
		}
		if err := svc.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns every shard's health row (dashboard /api/shards).
func (s *Supervisor) Stats() []ShardStats {
	out := make([]ShardStats, len(s.shards))
	for i, svc := range s.shards {
		out[i] = svc.Stats()
	}
	return out
}

// Close stops supervision and every shard (durable state stays on disk).
func (s *Supervisor) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	if s.listener != nil {
		s.listener.Close()
	}
	for _, svc := range s.shards {
		svc.Close()
	}
}

func (s *Supervisor) bumpVersion() {
	s.mu.Lock()
	s.version++
	s.mu.Unlock()
}

// superviseLoop restarts dead shards every tick — the "restart the failed
// component" loop the paper's fault-tolerance story assumes exists around
// the database — and bounds each live shard's WAL when a checkpoint
// threshold is configured.
func (s *Supervisor) superviseLoop(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			for i, svc := range s.shards {
				if !svc.Alive() {
					if s.cfg.AutoRestart <= 0 {
						continue // checkpoint-only supervision: restarts stay manual
					}
					if err := s.RestartShard(i); err == nil {
						if st := svc.Store(); st != nil {
							st.LogEvent(types.Event{Kind: "shard-restarted", Detail: fmt.Sprintf("shard %d incarnation %d", i, svc.Incarnation())})
						}
					}
				}
			}
			s.checkpointOversized()
		case <-s.stop:
			return
		}
	}
}

// checkpointOversized snapshots any live shard whose WAL grew past the
// configured byte threshold. Best-effort: a failed checkpoint already
// crash-restarts the shard on its own (see ShardService.Checkpoint), and
// the next tick retries whatever is still oversized.
func (s *Supervisor) checkpointOversized() {
	if s.cfg.CheckpointWALBytes <= 0 {
		return
	}
	for _, svc := range s.shards {
		if !svc.Alive() || svc.Stats().WALBytes < s.cfg.CheckpointWALBytes {
			continue
		}
		if err := svc.Checkpoint(); err == nil {
			if st := svc.Store(); st != nil {
				st.LogEvent(types.Event{Kind: "shard-checkpoint",
					Detail: fmt.Sprintf("shard %d WAL over %d bytes", svc.cfg.Index, s.cfg.CheckpointWALBytes)})
			}
		}
	}
}

// resetAfterRecovery is the cross-shard form of Store.ResetAfterRecovery,
// run once at supervisor boot: node records and object records live on
// different shards, so the dead-node set must be gathered across all
// shards before any shard's object locations can be scrubbed.
func (s *Supervisor) resetAfterRecovery() {
	dead := make(map[types.NodeID]bool)
	for _, svc := range s.shards {
		st := svc.Store()
		if st == nil {
			continue
		}
		for _, n := range st.Nodes() {
			dead[n.ID] = true
			st.MarkNodeDead(n.ID)
		}
	}
	if len(dead) == 0 {
		return
	}
	for _, svc := range s.shards {
		st := svc.Store()
		if st == nil {
			continue
		}
		for _, o := range st.Objects() {
			for _, loc := range o.Locations {
				if dead[loc] {
					st.RemoveObjectLocation(o.ID, loc)
				}
			}
		}
	}
}
