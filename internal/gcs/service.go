package gcs

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/types"
)

// Transport method names for the control-plane service. The head node
// (cmd/raynode -head) serves these; worker processes talk to the control
// plane exclusively through them, keeping every component except the
// database stateless across process boundaries (Section 3.2.1).
const (
	MethodNowNs            = "gcs.now"
	MethodAddTask          = "gcs.addTask"
	MethodGetTask          = "gcs.getTask"
	MethodSetTaskStatus    = "gcs.setTaskStatus"
	MethodCASTaskStatus    = "gcs.casTaskStatus"
	MethodClaimTask        = "gcs.claimTask"
	MethodRecordTaskRetry  = "gcs.recordTaskRetry"
	MethodModifyTaskStates = "gcs.modifyTaskStates"
	MethodLiveTasksOwned   = "gcs.liveTasksOwnedBy"
	MethodTasks            = "gcs.tasks"
	MethodStalePending     = "gcs.stalePendingTasks"
	MethodEnsureObject     = "gcs.ensureObject"
	MethodEnsureObjects    = "gcs.ensureObjects"
	MethodAddObjLocation   = "gcs.addObjLocation"
	MethodRemoveObjLoc     = "gcs.removeObjLocation"
	MethodGetObject        = "gcs.getObject"
	MethodObjects          = "gcs.objects"
	MethodModifyObjRef     = "gcs.modifyObjRefCount"
	MethodModifyObjRefs    = "gcs.modifyObjRefCounts"
	MethodSweepDeadRefs    = "gcs.sweepDeadNodeRefs"
	MethodMarkObjSpilled   = "gcs.markObjSpilled"
	MethodPublishSpill     = "gcs.publishSpill"
	MethodCreateGroup      = "gcs.createGroup"
	MethodRemoveGroup      = "gcs.removeGroup"
	MethodGetGroup         = "gcs.getGroup"
	MethodGroups           = "gcs.groups"
	MethodCASGroup         = "gcs.casGroup"
	MethodCreateJob        = "gcs.createJob"
	MethodGetJob           = "gcs.getJob"
	MethodJobs             = "gcs.jobs"
	MethodCASJob           = "gcs.casJob"
	MethodMarkJobPurged    = "gcs.markJobPurged"
	MethodJobTasks         = "gcs.jobTasks"
	MethodForceReleaseObjs = "gcs.forceReleaseObjects"
	MethodPurgeObjects     = "gcs.purgeObjects"
	MethodPurgeJobTasks    = "gcs.purgeJobTasks"
	MethodRegisterNode     = "gcs.registerNode"
	MethodHeartbeat        = "gcs.heartbeat"
	MethodMarkNodeDead     = "gcs.markNodeDead"
	MethodCASNodeState     = "gcs.casNodeState"
	MethodGetNode          = "gcs.getNode"
	MethodNodes            = "gcs.nodes"
	MethodRegisterFunction = "gcs.registerFunction"
	MethodHasFunction      = "gcs.hasFunction"
	MethodFunctions        = "gcs.functions"
	MethodLogEvent         = "gcs.logEvent"
	MethodEvents           = "gcs.events"
	MethodPublishTelemetry = "gcs.publishTelemetry"
	MethodTelemetry        = "gcs.telemetry"
	MethodSpans            = "gcs.spans"

	StreamTaskStatus = "gcs.sub.taskStatus" // payload: TaskID hex
	StreamObjReady   = "gcs.sub.objReady"   // payload: ObjectID hex
	StreamSpill      = "gcs.sub.spill"
	StreamNodes      = "gcs.sub.nodes"
	StreamObjGC      = "gcs.sub.objGC"
	StreamGroups     = "gcs.sub.groups"
	StreamJobs       = "gcs.sub.jobs"
)

// Wire request/response shapes (gob via codec).
type (
	setStatusReq struct {
		ID     types.TaskID
		Status types.TaskStatus
		Node   types.NodeID
		Worker types.WorkerID
		Err    string
		AtNs   int64 // non-positive = stamp server-side now
	}
	casStatusReq struct {
		ID   types.TaskID
		From []types.TaskStatus
		To   types.TaskStatus
		// Op is the idempotency token for retried CAS claims (0 = no
		// dedup); see Store.CASTaskStatusOp.
		Op uint64
	}
	recordRetryReq struct {
		ID types.TaskID
		// Op is the idempotency token for redelivered increments (0 = no
		// dedup); see Store.RecordTaskRetryOp.
		Op uint64
	}
	claimTaskReq struct {
		ID    types.TaskID
		From  []types.TaskStatus
		To    types.TaskStatus
		Owner types.NodeID
		// Op is the idempotency token for retried claims (0 = no dedup);
		// see Store.ClaimTaskOp.
		Op uint64
	}
	claimTaskResp struct {
		Seq uint64
		OK  bool
	}
	ensureObjectsReq struct {
		Producers map[types.ObjectID]types.TaskID
	}
	ensureObjectReq struct {
		ID       types.ObjectID
		Producer types.TaskID
	}
	objLocationReq struct {
		ID   types.ObjectID
		Node types.NodeID
		Size int64
	}
	heartbeatReq struct {
		ID    types.NodeID
		Queue int
		Avail types.Resources
		Store types.StoreStats
	}
	modifyRefReq struct {
		ID    types.ObjectID
		Delta int64
		// Op is the idempotency token for retried deltas (0 = no dedup);
		// see Store.ModifyObjectRefCountOp.
		Op uint64
	}
	modifyRefsReq struct {
		// Node attributes the deltas for the owner-death sweep.
		Node   types.NodeID
		Deltas map[types.ObjectID]int64
		// Op is the batch's idempotency token, recorded per-object; fixed
		// across retries of the same ledger flush (never 0 on this path).
		Op uint64
	}
	sweepRefsReq struct {
		Node types.NodeID
	}
	markSpilledReq struct {
		ID      types.ObjectID
		Node    types.NodeID
		Spilled bool
	}
	casGroupReq struct {
		ID    types.PlacementGroupID
		From  []types.PlacementGroupState
		To    types.PlacementGroupState
		Nodes []types.NodeID
		// Claim is the claimant token recorded at Placing and required at
		// the Placed commit (0 = no claim bookkeeping); see
		// Store.CASPlacementGroupStateClaim.
		Claim uint64
		// Op is the idempotency token for retried gang-state CAS claims
		// (0 = no dedup); see Store.CASPlacementGroupStateOp.
		Op uint64
	}
	casNodeReq struct {
		ID   types.NodeID
		From []types.NodeState
		To   types.NodeState
		// Op is the idempotency token for retried drain-state CAS claims
		// (0 = no dedup); see Store.CASNodeStateOp.
		Op uint64
	}
	publishTelemetryReq struct {
		ID    types.NodeID
		Snap  metrics.Snapshot
		Spans []metrics.SpanRecord
	}
	maybeTask struct {
		State types.TaskState
		OK    bool
	}
	maybeObject struct {
		Info types.ObjectInfo
		OK   bool
	}
	maybeNode struct {
		Info types.NodeInfo
		OK   bool
	}
	maybeGroup struct {
		Info types.PlacementGroupInfo
		OK   bool
	}
	casJobReq struct {
		ID   types.JobID
		From []types.JobState
		To   types.JobState
		// Op is the idempotency token for retried job-state CAS claims
		// (0 = no dedup); see Store.CASJobStateOp.
		Op uint64
	}
	maybeJob struct {
		Info types.JobInfo
		OK   bool
	}
	objectIDsReq struct {
		IDs []types.ObjectID
	}
)

// Registrar is the method-registration surface RegisterService needs.
// *transport.Server satisfies it directly; a GCS shard service passes a
// wrapper that gates every handler behind its kill switch so a "crashed"
// shard stops answering even clients holding live connections.
type Registrar interface {
	Handle(method string, h transport.Handler)
	HandleStream(method string, h transport.StreamHandler)
}

// RegisterService exposes a local Store over a transport server.
func RegisterService(srv Registrar, store *Store) {
	unary := func(method string, h func(payload []byte) (any, error)) {
		srv.Handle(method, func(payload []byte) ([]byte, error) {
			out, err := h(payload)
			if err != nil {
				return nil, err
			}
			return codec.Encode(out)
		})
	}

	unary(MethodNowNs, func(p []byte) (any, error) { return store.NowNs(), nil })
	unary(MethodAddTask, func(p []byte) (any, error) {
		st, err := codec.DecodeAs[types.TaskState](p)
		if err != nil {
			return nil, err
		}
		return store.AddTask(st), nil
	})
	unary(MethodGetTask, func(p []byte) (any, error) {
		id, err := codec.DecodeAs[types.TaskID](p)
		if err != nil {
			return nil, err
		}
		st, ok := store.GetTask(id)
		return maybeTask{State: st, OK: ok}, nil
	})
	unary(MethodSetTaskStatus, func(p []byte) (any, error) {
		req, err := codec.DecodeAs[setStatusReq](p)
		if err != nil {
			return nil, err
		}
		store.SetTaskStatusAt(req.ID, req.Status, req.Node, req.Worker, req.Err, req.AtNs)
		return true, nil
	})
	unary(MethodCASTaskStatus, func(p []byte) (any, error) {
		req, err := codec.DecodeAs[casStatusReq](p)
		if err != nil {
			return nil, err
		}
		return store.CASTaskStatusOp(req.ID, req.From, req.To, req.Op), nil
	})
	unary(MethodClaimTask, func(p []byte) (any, error) {
		req, err := codec.DecodeAs[claimTaskReq](p)
		if err != nil {
			return nil, err
		}
		seq, ok := store.ClaimTaskOp(req.ID, req.From, req.To, req.Owner, req.Op)
		return claimTaskResp{Seq: seq, OK: ok}, nil
	})
	unary(MethodRecordTaskRetry, func(p []byte) (any, error) {
		req, err := codec.DecodeAs[recordRetryReq](p)
		if err != nil {
			return nil, err
		}
		return store.RecordTaskRetryOp(req.ID, req.Op), nil
	})
	unary(MethodModifyTaskStates, func(p []byte) (any, error) {
		req, err := codec.DecodeAs[types.TaskLedgerBatch](p)
		if err != nil {
			return nil, err
		}
		// The local store applies everything it is given; the failed set is
		// a client-side (sharded transport) concept.
		store.ModifyTaskStates(req.Node, req.Deltas, req.Op)
		return true, nil
	})
	unary(MethodLiveTasksOwned, func(p []byte) (any, error) {
		id, err := codec.DecodeAs[types.NodeID](p)
		if err != nil {
			return nil, err
		}
		tasks, _ := store.LiveTasksOwnedBy(id)
		return tasks, nil
	})
	unary(MethodTasks, func(p []byte) (any, error) { return store.Tasks(), nil })
	unary(MethodStalePending, func(p []byte) (any, error) {
		age, err := codec.DecodeAs[int64](p)
		if err != nil {
			return nil, err
		}
		return store.StalePendingTasks(age), nil
	})
	unary(MethodEnsureObject, func(p []byte) (any, error) {
		req, err := codec.DecodeAs[ensureObjectReq](p)
		if err != nil {
			return nil, err
		}
		store.EnsureObject(req.ID, req.Producer)
		return true, nil
	})
	unary(MethodEnsureObjects, func(p []byte) (any, error) {
		req, err := codec.DecodeAs[ensureObjectsReq](p)
		if err != nil {
			return nil, err
		}
		store.EnsureObjects(req.Producers)
		return true, nil
	})
	unary(MethodAddObjLocation, func(p []byte) (any, error) {
		req, err := codec.DecodeAs[objLocationReq](p)
		if err != nil {
			return nil, err
		}
		store.AddObjectLocation(req.ID, req.Node, req.Size)
		return true, nil
	})
	unary(MethodRemoveObjLoc, func(p []byte) (any, error) {
		req, err := codec.DecodeAs[objLocationReq](p)
		if err != nil {
			return nil, err
		}
		store.RemoveObjectLocation(req.ID, req.Node)
		return true, nil
	})
	unary(MethodGetObject, func(p []byte) (any, error) {
		id, err := codec.DecodeAs[types.ObjectID](p)
		if err != nil {
			return nil, err
		}
		info, ok := store.GetObject(id)
		return maybeObject{Info: info, OK: ok}, nil
	})
	unary(MethodObjects, func(p []byte) (any, error) { return store.Objects(), nil })
	unary(MethodModifyObjRef, func(p []byte) (any, error) {
		req, err := codec.DecodeAs[modifyRefReq](p)
		if err != nil {
			return nil, err
		}
		return store.ModifyObjectRefCountOp(req.ID, req.Delta, req.Op), nil
	})
	unary(MethodModifyObjRefs, func(p []byte) (any, error) {
		req, err := codec.DecodeAs[modifyRefsReq](p)
		if err != nil {
			return nil, err
		}
		// The local store applies everything it is given; the failed set is
		// a client-side (sharded transport) concept.
		store.ModifyObjectRefCounts(req.Node, req.Deltas, req.Op)
		return true, nil
	})
	unary(MethodSweepDeadRefs, func(p []byte) (any, error) {
		req, err := codec.DecodeAs[sweepRefsReq](p)
		if err != nil {
			return nil, err
		}
		return store.SweepDeadNodeRefs(req.Node), nil
	})
	unary(MethodMarkObjSpilled, func(p []byte) (any, error) {
		req, err := codec.DecodeAs[markSpilledReq](p)
		if err != nil {
			return nil, err
		}
		store.MarkObjectSpilled(req.ID, req.Node, req.Spilled)
		return true, nil
	})
	unary(MethodCreateGroup, func(p []byte) (any, error) {
		spec, err := codec.DecodeAs[types.PlacementGroupSpec](p)
		if err != nil {
			return nil, err
		}
		return store.CreatePlacementGroup(spec), nil
	})
	unary(MethodRemoveGroup, func(p []byte) (any, error) {
		id, err := codec.DecodeAs[types.PlacementGroupID](p)
		if err != nil {
			return nil, err
		}
		return store.RemovePlacementGroup(id), nil
	})
	unary(MethodGetGroup, func(p []byte) (any, error) {
		id, err := codec.DecodeAs[types.PlacementGroupID](p)
		if err != nil {
			return nil, err
		}
		info, ok := store.GetPlacementGroup(id)
		return maybeGroup{Info: info, OK: ok}, nil
	})
	unary(MethodGroups, func(p []byte) (any, error) { return store.PlacementGroups(), nil })
	unary(MethodCASGroup, func(p []byte) (any, error) {
		req, err := codec.DecodeAs[casGroupReq](p)
		if err != nil {
			return nil, err
		}
		return store.CASPlacementGroupStateOp(req.ID, req.From, req.To, req.Nodes, req.Claim, req.Op), nil
	})
	unary(MethodCreateJob, func(p []byte) (any, error) {
		spec, err := codec.DecodeAs[types.JobSpec](p)
		if err != nil {
			return nil, err
		}
		return store.CreateJob(spec), nil
	})
	unary(MethodGetJob, func(p []byte) (any, error) {
		id, err := codec.DecodeAs[types.JobID](p)
		if err != nil {
			return nil, err
		}
		info, ok := store.GetJob(id)
		return maybeJob{Info: info, OK: ok}, nil
	})
	unary(MethodJobs, func(p []byte) (any, error) { return store.Jobs(), nil })
	unary(MethodCASJob, func(p []byte) (any, error) {
		req, err := codec.DecodeAs[casJobReq](p)
		if err != nil {
			return nil, err
		}
		return store.CASJobStateOp(req.ID, req.From, req.To, req.Op), nil
	})
	unary(MethodMarkJobPurged, func(p []byte) (any, error) {
		id, err := codec.DecodeAs[types.JobID](p)
		if err != nil {
			return nil, err
		}
		return store.MarkJobPurged(id), nil
	})
	unary(MethodJobTasks, func(p []byte) (any, error) {
		id, err := codec.DecodeAs[types.JobID](p)
		if err != nil {
			return nil, err
		}
		tasks, _ := store.JobTasks(id)
		return tasks, nil
	})
	unary(MethodForceReleaseObjs, func(p []byte) (any, error) {
		req, err := codec.DecodeAs[objectIDsReq](p)
		if err != nil {
			return nil, err
		}
		// The local store applies everything it is given; the failed set
		// is a client-side (sharded transport) concept.
		store.ForceReleaseObjects(req.IDs)
		return true, nil
	})
	unary(MethodPurgeObjects, func(p []byte) (any, error) {
		req, err := codec.DecodeAs[objectIDsReq](p)
		if err != nil {
			return nil, err
		}
		return objectIDsReq{IDs: store.PurgeObjects(req.IDs)}, nil
	})
	unary(MethodPurgeJobTasks, func(p []byte) (any, error) {
		id, err := codec.DecodeAs[types.JobID](p)
		if err != nil {
			return nil, err
		}
		n, _ := store.PurgeJobTasks(id)
		return n, nil
	})
	unary(MethodPublishSpill, func(p []byte) (any, error) {
		spec, err := codec.DecodeAs[types.TaskSpec](p)
		if err != nil {
			return nil, err
		}
		store.PublishSpill(spec)
		return true, nil
	})
	unary(MethodRegisterNode, func(p []byte) (any, error) {
		info, err := codec.DecodeAs[types.NodeInfo](p)
		if err != nil {
			return nil, err
		}
		store.RegisterNode(info)
		return true, nil
	})
	unary(MethodHeartbeat, func(p []byte) (any, error) {
		req, err := codec.DecodeAs[heartbeatReq](p)
		if err != nil {
			return nil, err
		}
		store.Heartbeat(req.ID, req.Queue, req.Avail, req.Store)
		return true, nil
	})
	unary(MethodMarkNodeDead, func(p []byte) (any, error) {
		id, err := codec.DecodeAs[types.NodeID](p)
		if err != nil {
			return nil, err
		}
		store.MarkNodeDead(id)
		return true, nil
	})
	unary(MethodCASNodeState, func(p []byte) (any, error) {
		req, err := codec.DecodeAs[casNodeReq](p)
		if err != nil {
			return nil, err
		}
		return store.CASNodeStateOp(req.ID, req.From, req.To, req.Op), nil
	})
	unary(MethodGetNode, func(p []byte) (any, error) {
		id, err := codec.DecodeAs[types.NodeID](p)
		if err != nil {
			return nil, err
		}
		info, ok := store.GetNode(id)
		return maybeNode{Info: info, OK: ok}, nil
	})
	unary(MethodNodes, func(p []byte) (any, error) { return store.Nodes(), nil })
	unary(MethodRegisterFunction, func(p []byte) (any, error) {
		info, err := codec.DecodeAs[FunctionInfo](p)
		if err != nil {
			return nil, err
		}
		store.RegisterFunction(info)
		return true, nil
	})
	unary(MethodHasFunction, func(p []byte) (any, error) {
		name, err := codec.DecodeAs[string](p)
		if err != nil {
			return nil, err
		}
		return store.HasFunction(name), nil
	})
	unary(MethodFunctions, func(p []byte) (any, error) { return store.Functions(), nil })
	unary(MethodLogEvent, func(p []byte) (any, error) {
		ev, err := codec.DecodeAs[types.Event](p)
		if err != nil {
			return nil, err
		}
		store.LogEvent(ev)
		return true, nil
	})
	unary(MethodEvents, func(p []byte) (any, error) { return store.Events(), nil })
	unary(MethodPublishTelemetry, func(p []byte) (any, error) {
		req, err := codec.DecodeAs[publishTelemetryReq](p)
		if err != nil {
			return nil, err
		}
		store.PublishTelemetry(req.ID, req.Snap, req.Spans)
		return true, nil
	})
	unary(MethodTelemetry, func(p []byte) (any, error) { return store.Telemetry(), nil })
	unary(MethodSpans, func(p []byte) (any, error) { return store.Spans(), nil })

	// Streaming subscriptions: forward the local subscription's messages
	// until the client disconnects. The first message is an empty ack sent
	// after the local subscription exists, so a client that has seen the
	// ack knows no later publish can be missed (Remote.subscribe blocks on
	// it).
	forward := func(sub Sub, stream transport.ServerStream) error {
		defer sub.Close()
		if err := stream.Send(nil); err != nil {
			return nil
		}
		for {
			select {
			case msg, ok := <-sub.C():
				if !ok {
					return nil
				}
				if err := stream.Send(msg); err != nil {
					return nil // client gone
				}
			case <-stream.Done():
				return nil
			}
		}
	}
	srv.HandleStream(StreamTaskStatus, func(payload []byte, stream transport.ServerStream) error {
		id, err := types.ParseTaskID(string(payload))
		if err != nil {
			return fmt.Errorf("gcs: bad task-status subscription: %w", err)
		}
		return forward(store.SubscribeTaskStatus(id), stream)
	})
	srv.HandleStream(StreamObjReady, func(payload []byte, stream transport.ServerStream) error {
		id, err := types.ParseObjectID(string(payload))
		if err != nil {
			return fmt.Errorf("gcs: bad object-ready subscription: %w", err)
		}
		return forward(store.SubscribeObjectReady(id), stream)
	})
	srv.HandleStream(StreamSpill, func(payload []byte, stream transport.ServerStream) error {
		return forward(store.SubscribeSpill(), stream)
	})
	srv.HandleStream(StreamNodes, func(payload []byte, stream transport.ServerStream) error {
		return forward(store.SubscribeNodeEvents(), stream)
	})
	srv.HandleStream(StreamGroups, func(payload []byte, stream transport.ServerStream) error {
		return forward(store.SubscribePlacementGroups(), stream)
	})
	srv.HandleStream(StreamJobs, func(payload []byte, stream transport.ServerStream) error {
		return forward(store.SubscribeJobs(), stream)
	})
	srv.HandleStream(StreamObjGC, func(payload []byte, stream transport.ServerStream) error {
		// Subscribe first (so nothing published after this point is lost),
		// then replay the currently GC-eligible set before forwarding live
		// messages: a subscriber (re)attaching after a shard crash learns
		// of zero-refcount transitions whose publish died with the old
		// incarnation. Reclaim is idempotent, so overlap is harmless.
		sub := store.SubscribeObjectGC()
		defer sub.Close()
		if err := stream.Send(nil); err != nil {
			return nil
		}
		for _, id := range store.GCEligibleObjects() {
			if err := stream.Send(id[:]); err != nil {
				return nil
			}
		}
		for {
			select {
			case msg, ok := <-sub.C():
				if !ok {
					return nil
				}
				if err := stream.Send(msg); err != nil {
					return nil
				}
			case <-stream.Done():
				return nil
			}
		}
	})
}
