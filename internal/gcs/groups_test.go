package gcs

import (
	"sync"
	"testing"
	"time"

	"repro/internal/types"
)

func testGroupSpec(seed byte, bundles int) types.PlacementGroupSpec {
	var id types.PlacementGroupID
	id[0] = seed
	spec := types.PlacementGroupSpec{ID: id, Name: "g", Strategy: types.StrategyStrictSpread}
	for i := 0; i < bundles; i++ {
		spec.Bundles = append(spec.Bundles, types.Bundle{Resources: types.CPU(2)})
	}
	return spec
}

func TestGroupTableLifecycle(t *testing.T) {
	s := NewStore(2)
	spec := testGroupSpec(1, 2)

	if !s.CreatePlacementGroup(spec) {
		t.Fatal("create failed")
	}
	if s.CreatePlacementGroup(spec) {
		t.Fatal("duplicate create must report false")
	}
	info, ok := s.GetPlacementGroup(spec.ID)
	if !ok || info.State != types.GroupPending || len(info.Spec.Bundles) != 2 {
		t.Fatalf("bad record after create: %+v ok=%v", info, ok)
	}

	// Claim, commit with bundle nodes, verify.
	var n1, n2 types.NodeID
	n1[0], n2[0] = 1, 2
	if !s.CASPlacementGroupState(spec.ID, []types.PlacementGroupState{types.GroupPending}, types.GroupPlacing, nil) {
		t.Fatal("claim CAS failed")
	}
	if s.CASPlacementGroupState(spec.ID, []types.PlacementGroupState{types.GroupPending}, types.GroupPlacing, nil) {
		t.Fatal("second claim must lose")
	}
	if !s.CASPlacementGroupState(spec.ID, []types.PlacementGroupState{types.GroupPlacing}, types.GroupPlaced, []types.NodeID{n1, n2}) {
		t.Fatal("commit CAS failed")
	}
	info, _ = s.GetPlacementGroup(spec.ID)
	if info.State != types.GroupPlaced || info.NodeFor(0) != n1 || info.NodeFor(1) != n2 {
		t.Fatalf("bad placed record: %+v", info)
	}
	if info.PlacedNs == 0 {
		t.Error("PlacedNs not stamped")
	}

	// Rollback clears the assignment.
	if !s.CASPlacementGroupState(spec.ID, []types.PlacementGroupState{types.GroupPlaced}, types.GroupPending, nil) {
		t.Fatal("rollback CAS failed")
	}
	info, _ = s.GetPlacementGroup(spec.ID)
	if info.State != types.GroupPending || info.BundleNodes != nil {
		t.Fatalf("rollback left assignment: %+v", info)
	}

	// Removal is terminal and idempotent.
	if !s.RemovePlacementGroup(spec.ID) {
		t.Fatal("remove failed")
	}
	if s.RemovePlacementGroup(spec.ID) {
		t.Fatal("second remove must report false")
	}
	if s.CASPlacementGroupState(spec.ID, []types.PlacementGroupState{types.GroupPending, types.GroupRemoved}, types.GroupPlacing, nil) {
		// Removed is in `from`, so the CAS is eligible — but allowing a
		// removed group back into Placing would resurrect it. The gang
		// pass never passes Removed in `from`; this documents that the
		// store itself does not special-case it.
		info, _ = s.GetPlacementGroup(spec.ID)
		if info.State != types.GroupPlacing {
			t.Fatal("inconsistent CAS result")
		}
	}
}

// TestGroupCASTokenDedup pins the §7-style idempotency: a retried CAS
// carrying the same token is reported won without re-applying.
func TestGroupCASTokenDedup(t *testing.T) {
	s := NewStore(2)
	spec := testGroupSpec(2, 1)
	s.CreatePlacementGroup(spec)

	const op = 0xBEEF
	if !s.CASPlacementGroupStateOp(spec.ID, []types.PlacementGroupState{types.GroupPending}, types.GroupPlacing, nil, 0, op) {
		t.Fatal("first CAS failed")
	}
	// The "response was lost" retry: same token, same transition. Without
	// dedup this would lose (state is no longer Pending) and the claimant
	// would wrongly back off.
	if !s.CASPlacementGroupStateOp(spec.ID, []types.PlacementGroupState{types.GroupPending}, types.GroupPlacing, nil, 0, op) {
		t.Fatal("retried CAS with same token must be reported won")
	}
	// A different token for the same transition properly loses.
	if s.CASPlacementGroupStateOp(spec.ID, []types.PlacementGroupState{types.GroupPending}, types.GroupPlacing, nil, 0, op+1) {
		t.Fatal("fresh CAS from wrong state must lose")
	}
}

// TestGroupSubscription checks create/transition/remove all publish.
func TestGroupSubscription(t *testing.T) {
	s := NewStore(2)
	sub := s.SubscribePlacementGroups()
	defer sub.Close()

	spec := testGroupSpec(3, 1)
	s.CreatePlacementGroup(spec)
	s.CASPlacementGroupState(spec.ID, []types.PlacementGroupState{types.GroupPending}, types.GroupPlacing, nil)
	s.RemovePlacementGroup(spec.ID)

	states := []types.PlacementGroupState{types.GroupPending, types.GroupPlacing, types.GroupRemoved}
	for _, want := range states {
		select {
		case raw := <-sub.C():
			info, err := DecodeGroupEvent(raw)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if info.State != want {
				t.Fatalf("want state %v, got %v", want, info.State)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("no event for state %v", want)
		}
	}
}

// TestGroupConcurrentCreateRemove races creates, removes, and CAS claims
// under -race: the record must end in a consistent terminal state and the
// store must never panic or corrupt.
func TestGroupConcurrentCreateRemove(t *testing.T) {
	s := NewStore(4)
	const groups = 16
	var wg sync.WaitGroup
	for i := 0; i < groups; i++ {
		spec := testGroupSpec(byte(10+i), 2)
		wg.Add(3)
		go func(spec types.PlacementGroupSpec) {
			defer wg.Done()
			s.CreatePlacementGroup(spec)
		}(spec)
		go func(id types.PlacementGroupID) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				s.CASPlacementGroupState(id, []types.PlacementGroupState{types.GroupPending}, types.GroupPlacing, nil)
				s.CASPlacementGroupState(id, []types.PlacementGroupState{types.GroupPlacing}, types.GroupPending, nil)
			}
		}(spec.ID)
		go func(id types.PlacementGroupID) {
			defer wg.Done()
			s.RemovePlacementGroup(id)
		}(spec.ID)
	}
	wg.Wait()
	for i := 0; i < groups; i++ {
		var id types.PlacementGroupID
		id[0] = byte(10 + i)
		info, ok := s.GetPlacementGroup(id)
		if !ok {
			continue // remove raced ahead of create; create then won — re-check
		}
		switch info.State {
		case types.GroupPending, types.GroupPlacing, types.GroupRemoved:
		default:
			t.Fatalf("group %d in impossible state %v", i, info.State)
		}
		if info.State == types.GroupRemoved && info.BundleNodes != nil {
			t.Fatalf("removed group %d kept bundle nodes", i)
		}
	}
}

// TestGangClaimTokenFencesStaleCommit pins the ROADMAP "gang claim tokens"
// fix: a claimant stalled past the stale-claim sweep must not commit over
// a successor's claim. The interleaving is exactly the one the sweep alone
// could not close — claimant A claims and stalls, the sweep resets the
// group, successor B claims — and the assertion is that A's late commit
// (carrying its stale token) loses while B's wins with B's placement.
func TestGangClaimTokenFencesStaleCommit(t *testing.T) {
	s := NewStore(2)
	spec := testGroupSpec(20, 1)
	s.CreatePlacementGroup(spec)

	const tokenA, tokenB = 0xA11CE, 0xB0B
	var nodeA, nodeB types.NodeID
	nodeA[0], nodeB[0] = 1, 2

	// A claims and stalls mid-reservation.
	if !s.CASPlacementGroupStateClaim(spec.ID, []types.PlacementGroupState{types.GroupPending}, types.GroupPlacing, nil, tokenA) {
		t.Fatal("claimant A's claim failed")
	}
	// The stale-claim sweep fences A out: token-less rollback to Pending.
	if !s.CASPlacementGroupState(spec.ID, []types.PlacementGroupState{types.GroupPlacing}, types.GroupPending, nil) {
		t.Fatal("sweep rollback failed")
	}
	// Successor B claims.
	if !s.CASPlacementGroupStateClaim(spec.ID, []types.PlacementGroupState{types.GroupPending}, types.GroupPlacing, nil, tokenB) {
		t.Fatal("successor B's claim failed")
	}
	// A wakes up and commits: the state IS Placing, so before claim tokens
	// this CAS won and installed A's placement over B's claim. The token
	// mismatch must now fail it.
	if s.CASPlacementGroupStateClaim(spec.ID, []types.PlacementGroupState{types.GroupPlacing}, types.GroupPlaced, []types.NodeID{nodeA}, tokenA) {
		t.Fatal("stale claimant's commit must lose to the successor's claim")
	}
	// A's rollback attempt (reserve-failure path carries its claim) must
	// not yank B's live claim either.
	if s.CASPlacementGroupStateClaim(spec.ID, []types.PlacementGroupState{types.GroupPlacing}, types.GroupPending, nil, tokenA) {
		t.Fatal("stale claimant's rollback must not clear the successor's claim")
	}
	// B commits normally.
	if !s.CASPlacementGroupStateClaim(spec.ID, []types.PlacementGroupState{types.GroupPlacing}, types.GroupPlaced, []types.NodeID{nodeB}, tokenB) {
		t.Fatal("successor's commit must win")
	}
	info, ok := s.GetPlacementGroup(spec.ID)
	if !ok || info.State != types.GroupPlaced || len(info.BundleNodes) != 1 || info.BundleNodes[0] != nodeB {
		t.Fatalf("successor's placement clobbered: %+v ok=%v", info, ok)
	}
}

// TestGangClaimTokenLegacyPaths checks the fence stays out of the way of
// token-less callers: with no claim recorded, a claim-0 commit still works
// (pre-token behaviour), and rollbacks to Pending clear any stale token.
func TestGangClaimTokenLegacyPaths(t *testing.T) {
	s := NewStore(2)
	spec := testGroupSpec(21, 1)
	s.CreatePlacementGroup(spec)
	var n types.NodeID
	n[0] = 7

	if !s.CASPlacementGroupState(spec.ID, []types.PlacementGroupState{types.GroupPending}, types.GroupPlacing, nil) {
		t.Fatal("token-less claim failed")
	}
	if !s.CASPlacementGroupState(spec.ID, []types.PlacementGroupState{types.GroupPlacing}, types.GroupPlaced, []types.NodeID{n}) {
		t.Fatal("token-less commit with no recorded claim must pass")
	}
	// Roll back and run a tokened cycle; then a sweep reset must clear the
	// token so the next token-less cycle is unencumbered.
	if !s.CASPlacementGroupState(spec.ID, []types.PlacementGroupState{types.GroupPlaced}, types.GroupPending, nil) {
		t.Fatal("rollback failed")
	}
	if !s.CASPlacementGroupStateClaim(spec.ID, []types.PlacementGroupState{types.GroupPending}, types.GroupPlacing, nil, 42) {
		t.Fatal("tokened claim failed")
	}
	if !s.CASPlacementGroupState(spec.ID, []types.PlacementGroupState{types.GroupPlacing}, types.GroupPending, nil) {
		t.Fatal("sweep reset failed")
	}
	if !s.CASPlacementGroupState(spec.ID, []types.PlacementGroupState{types.GroupPending}, types.GroupPlacing, nil) {
		t.Fatal("token-less claim after sweep failed")
	}
	if !s.CASPlacementGroupState(spec.ID, []types.PlacementGroupState{types.GroupPlacing}, types.GroupPlaced, []types.NodeID{n}) {
		t.Fatal("token cleared by sweep: token-less commit must pass")
	}
}
