package gcs

import (
	"testing"
	"time"

	"repro/internal/types"
)

func mkTask(i uint64) types.TaskState {
	id := types.DeriveTaskID(types.NilTaskID, i)
	return types.TaskState{Spec: types.TaskSpec{ID: id, Function: "f", NumReturns: 1}}
}

func nodeID(i uint64) types.NodeID {
	return types.NodeID(types.DeriveTaskID(types.NilTaskID, 1000+i))
}

func TestAddTaskExactlyOnce(t *testing.T) {
	s := NewStore(4)
	st := mkTask(1)
	if !s.AddTask(st) {
		t.Fatal("first AddTask failed")
	}
	if s.AddTask(st) {
		t.Fatal("duplicate AddTask succeeded — lineage dedup broken")
	}
	got, ok := s.GetTask(st.Spec.ID)
	if !ok || got.Spec.Function != "f" {
		t.Fatalf("GetTask = %+v, %v", got, ok)
	}
	if got.SubmittedNs == 0 {
		t.Fatal("submit timestamp not set")
	}
}

func TestSetTaskStatusTimestampsAndPublish(t *testing.T) {
	s := NewStore(4)
	st := mkTask(2)
	s.AddTask(st)
	sub := s.SubscribeTaskStatus(st.Spec.ID)
	defer sub.Close()

	n := nodeID(1)
	w := types.WorkerID(types.DeriveTaskID(types.NilTaskID, 2000))
	s.SetTaskStatus(st.Spec.ID, types.TaskRunning, n, w, "")
	got, _ := s.GetTask(st.Spec.ID)
	if got.Status != types.TaskRunning || got.Node != n || got.Worker != w {
		t.Fatalf("state after running: %+v", got)
	}
	if got.StartedNs == 0 {
		t.Fatal("start timestamp not set")
	}
	select {
	case msg := <-sub.C():
		if types.TaskStatus(msg[0]) != types.TaskRunning {
			t.Fatalf("published status %d", msg[0])
		}
	case <-time.After(time.Second):
		t.Fatal("status not published")
	}

	s.SetTaskStatus(st.Spec.ID, types.TaskFinished, types.NilNodeID, types.NilWorkerID, "")
	got, _ = s.GetTask(st.Spec.ID)
	if got.FinishedNs == 0 {
		t.Fatal("finish timestamp not set")
	}
	if got.Node != n {
		t.Fatal("nil node ID overwrote recorded node")
	}
}

func TestSetTaskStatusError(t *testing.T) {
	s := NewStore(2)
	st := mkTask(3)
	s.AddTask(st)
	s.SetTaskStatus(st.Spec.ID, types.TaskFailed, types.NilNodeID, types.NilWorkerID, "boom")
	got, _ := s.GetTask(st.Spec.ID)
	if got.Status != types.TaskFailed || got.Error != "boom" {
		t.Fatalf("failed state: %+v", got)
	}
}

func TestRecordTaskRetry(t *testing.T) {
	s := NewStore(2)
	st := mkTask(4)
	s.AddTask(st)
	if n := s.RecordTaskRetry(st.Spec.ID); n != 1 {
		t.Fatalf("first retry = %d", n)
	}
	if n := s.RecordTaskRetry(st.Spec.ID); n != 2 {
		t.Fatalf("second retry = %d", n)
	}
	if n := s.RecordTaskRetry(types.DeriveTaskID(types.NilTaskID, 999)); n != 0 {
		t.Fatalf("retry of unknown task = %d", n)
	}
}

func TestObjectLifecycle(t *testing.T) {
	s := NewStore(4)
	task := types.DeriveTaskID(types.NilTaskID, 5)
	obj := types.ObjectIDForReturn(task, 0)
	s.EnsureObject(obj, task)

	info, ok := s.GetObject(obj)
	if !ok || info.State != types.ObjectPending || info.Producer != task {
		t.Fatalf("pending object: %+v, %v", info, ok)
	}

	sub := s.SubscribeObjectReady(obj)
	defer sub.Close()
	n1, n2 := nodeID(1), nodeID(2)
	s.AddObjectLocation(obj, n1, 128)
	select {
	case <-sub.C():
	case <-time.After(time.Second):
		t.Fatal("ready notification not published")
	}
	info, _ = s.GetObject(obj)
	if info.State != types.ObjectReady || info.Size != 128 || !info.HasLocation(n1) {
		t.Fatalf("ready object: %+v", info)
	}

	s.AddObjectLocation(obj, n2, 128)
	s.AddObjectLocation(obj, n2, 128) // idempotent
	info, _ = s.GetObject(obj)
	if len(info.Locations) != 2 {
		t.Fatalf("locations = %v", info.Locations)
	}

	s.RemoveObjectLocation(obj, n1)
	info, _ = s.GetObject(obj)
	if info.State != types.ObjectReady || len(info.Locations) != 1 {
		t.Fatalf("after one removal: %+v", info)
	}

	s.RemoveObjectLocation(obj, n2)
	info, _ = s.GetObject(obj)
	if info.State != types.ObjectLost {
		t.Fatalf("object should be LOST, is %v", info.State)
	}
	if info.Producer != task {
		t.Fatal("lineage edge lost")
	}
}

func TestAddLocationWithoutEnsure(t *testing.T) {
	s := NewStore(2)
	obj := types.ObjectIDForReturn(types.DeriveTaskID(types.NilTaskID, 6), 0)
	s.AddObjectLocation(obj, nodeID(3), 64)
	info, ok := s.GetObject(obj)
	if !ok || info.State != types.ObjectReady {
		t.Fatalf("object: %+v, %v", info, ok)
	}
}

func TestSpillPubSub(t *testing.T) {
	s := NewStore(4)
	sub := s.SubscribeSpill()
	defer sub.Close()
	spec := mkTask(7).Spec
	s.PublishSpill(spec)
	select {
	case raw := <-sub.C():
		got, err := decodeSpec(raw)
		if err != nil || got.ID != spec.ID {
			t.Fatalf("spill decode: %v %v", got.ID, err)
		}
	case <-time.After(time.Second):
		t.Fatal("spill not delivered")
	}
}

func TestNodeTable(t *testing.T) {
	s := NewStore(4)
	sub := s.SubscribeNodeEvents()
	defer sub.Close()
	n := nodeID(10)
	s.RegisterNode(types.NodeInfo{ID: n, Addr: "inproc:1", Total: types.CPU(4)})
	select {
	case <-sub.C():
	case <-time.After(time.Second):
		t.Fatal("node-join not published")
	}
	info, ok := s.GetNode(n)
	if !ok || !info.Alive || info.Total[types.ResCPU] != 4 {
		t.Fatalf("node: %+v, %v", info, ok)
	}

	s.Heartbeat(n, 3, types.CPU(2), types.StoreStats{UsedBytes: 128, SpilledBytes: 32})
	info, _ = s.GetNode(n)
	if info.QueueLen != 3 || info.Available[types.ResCPU] != 2 || info.Store.SpilledBytes != 32 {
		t.Fatalf("after heartbeat: %+v", info)
	}

	s.MarkNodeDead(n)
	select {
	case <-sub.C():
	case <-time.After(time.Second):
		t.Fatal("node-dead not published")
	}
	info, _ = s.GetNode(n)
	if info.Alive {
		t.Fatal("node still alive")
	}
	if len(s.Nodes()) != 1 {
		t.Fatal("Nodes scan wrong")
	}
}

func TestHeartbeatUnknownNodeIgnored(t *testing.T) {
	s := NewStore(2)
	s.Heartbeat(nodeID(99), 1, nil, types.StoreStats{}) // must not panic or create entries
	if len(s.Nodes()) != 0 {
		t.Fatal("heartbeat created a node record")
	}
}

func TestFunctionTable(t *testing.T) {
	s := NewStore(2)
	if s.HasFunction("f") {
		t.Fatal("unknown function reported present")
	}
	s.RegisterFunction(FunctionInfo{Name: "f", NumReturns: 1})
	s.RegisterFunction(FunctionInfo{Name: "a", NumReturns: 2})
	if !s.HasFunction("f") {
		t.Fatal("registered function missing")
	}
	fns := s.Functions()
	if len(fns) != 2 || fns[0].Name != "a" || fns[1].Name != "f" {
		t.Fatalf("Functions = %+v", fns)
	}
}

func TestEventLogOrderingAndToggle(t *testing.T) {
	s := NewStore(4)
	n := nodeID(1)
	for i := 0; i < 5; i++ {
		s.LogEvent(types.Event{Kind: "k", Node: n})
	}
	evs := s.Events()
	if len(evs) != 5 {
		t.Fatalf("events = %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TimeNs < evs[i-1].TimeNs {
			t.Fatal("events out of time order")
		}
	}
	s.SetEventLogging(false)
	s.LogEvent(types.Event{Kind: "k2", Node: n})
	if len(s.Events()) != 5 {
		t.Fatal("event logged while disabled")
	}
}

func TestTasksScanOrdered(t *testing.T) {
	s := NewStore(8)
	for i := uint64(0); i < 10; i++ {
		s.AddTask(mkTask(i))
	}
	tasks := s.Tasks()
	if len(tasks) != 10 {
		t.Fatalf("Tasks = %d", len(tasks))
	}
	for i := 1; i < len(tasks); i++ {
		if tasks[i].SubmittedNs < tasks[i-1].SubmittedNs {
			t.Fatal("tasks out of submission order")
		}
	}
}

func TestNowNsMonotonic(t *testing.T) {
	s := NewStore(1)
	a := s.NowNs()
	time.Sleep(time.Millisecond)
	b := s.NowNs()
	if b <= a {
		t.Fatal("clock not advancing")
	}
}

// TestNodeDrainStateMachine pins the node-table drain CAS (DESIGN.md §10):
// Active→Draining→Drained with rollback, publish on every win, DrainNs
// stamping, and the §7-style idempotency-token dedup.
func TestNodeDrainStateMachine(t *testing.T) {
	s := NewStore(2)
	var id types.NodeID
	id[0] = 9
	s.RegisterNode(types.NodeInfo{ID: id, Addr: "n", Total: types.CPU(4)})

	sub := s.SubscribeNodeEvents()
	defer sub.Close()

	if s.CASNodeState(id, []types.NodeState{types.NodeDraining}, types.NodeDrained) {
		t.Fatal("Drained from Active must lose")
	}
	if !s.CASNodeState(id, []types.NodeState{types.NodeActive}, types.NodeDraining) {
		t.Fatal("Active→Draining failed")
	}
	info, _ := s.GetNode(id)
	if info.State != types.NodeDraining || info.DrainNs <= 0 {
		t.Fatalf("bad record after drain mark: %+v", info)
	}
	select {
	case raw := <-sub.C():
		ev, err := DecodeNodeEvent(raw)
		if err != nil || ev.State != types.NodeDraining {
			t.Fatalf("bad drain publish: %+v err=%v", ev, err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("drain transition did not publish")
	}
	// Concurrent second drain decision loses.
	if s.CASNodeState(id, []types.NodeState{types.NodeActive}, types.NodeDraining) {
		t.Fatal("second Active→Draining must lose")
	}
	// Rollback clears the drain stamp.
	if !s.CASNodeState(id, []types.NodeState{types.NodeDraining}, types.NodeActive) {
		t.Fatal("rollback failed")
	}
	if info, _ := s.GetNode(id); info.State != types.NodeActive || info.DrainNs != 0 {
		t.Fatalf("rollback left residue: %+v", info)
	}
	// Tokenized retry across a "crash": the same op token is reported won
	// without re-applying; a fresh token from the wrong state loses.
	const op = 0xD12A
	if !s.CASNodeStateOp(id, []types.NodeState{types.NodeActive}, types.NodeDraining, op) {
		t.Fatal("tokened drain failed")
	}
	if !s.CASNodeStateOp(id, []types.NodeState{types.NodeActive}, types.NodeDraining, op) {
		t.Fatal("retried CAS with same token must be reported won")
	}
	if s.CASNodeStateOp(id, []types.NodeState{types.NodeActive}, types.NodeDraining, op+1) {
		t.Fatal("fresh CAS from wrong state must lose")
	}
	// Heartbeats must not disturb the drain state.
	s.Heartbeat(id, 3, types.CPU(1), types.StoreStats{})
	if info, _ := s.GetNode(id); info.State != types.NodeDraining {
		t.Fatalf("heartbeat clobbered drain state: %+v", info)
	}
	if !s.CASNodeState(id, []types.NodeState{types.NodeDraining}, types.NodeDrained) {
		t.Fatal("Draining→Drained failed")
	}
}
