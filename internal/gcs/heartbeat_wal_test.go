package gcs

import (
	"testing"

	"repro/internal/transport"
	"repro/internal/types"
)

// TestHeartbeatsKeepWALFlat is the soak test for the heartbeat WAL bypass:
// heartbeats are ephemeral load signals refreshed every interval, so a
// shard must apply them in memory without writing the WAL — before the
// bypass, a quiet 100-node cluster grew every shard's log by hundreds of
// records per second, and checkpoint cost scaled with idle time. The
// update must still take effect, and logged mutations must still log.
func TestHeartbeatsKeepWALFlat(t *testing.T) {
	nw := transport.NewInproc(0)
	svc, err := StartShard(ShardConfig{Index: 0, Addr: "shard-hb", Network: nw, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	st := svc.Store()

	node := testNodeID(1)
	st.RegisterNode(types.NodeInfo{ID: node, Addr: "a", Total: types.CPU(4), Alive: true})
	base := svc.Stats().WALBytes
	if base == 0 {
		t.Fatal("setup: node registration should have logged")
	}

	const beats = 500
	for i := 0; i < beats; i++ {
		st.Heartbeat(node, i, types.CPU(2), types.StoreStats{UsedBytes: int64(i)})
	}
	if got := svc.Stats().WALBytes; got != base {
		t.Fatalf("%d heartbeats grew the WAL by %d bytes (want 0)", beats, got-base)
	}

	// The bypass applies the update in memory: the last beat is visible.
	info, ok := st.GetNode(node)
	if !ok || info.QueueLen != beats-1 {
		t.Fatalf("heartbeat not applied: ok=%v queueLen=%d want %d", ok, info.QueueLen, beats-1)
	}

	// Logged mutations still append — the bypass is heartbeat-only.
	st.EnsureObject(testObjectID(1), types.NilTaskID)
	if got := svc.Stats().WALBytes; got <= base {
		t.Fatalf("logged mutation did not grow the WAL (%d <= %d)", got, base)
	}
}
