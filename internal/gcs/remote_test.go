package gcs

import (
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/types"
)

// remoteFixture serves a Store over an in-process transport and returns an
// API-compatible Remote plus the backing Store.
func remoteFixture(t *testing.T) (*Remote, *Store) {
	t.Helper()
	store := NewStore(4)
	srv := transport.NewServer()
	RegisterService(srv, store)
	nw := transport.NewInproc(0)
	l, err := nw.Listen("gcs", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	client, err := nw.Dial("gcs")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return NewRemote(client), store
}

// remoteOverTCP is the same fixture over real sockets.
func remoteOverTCP(t *testing.T) (*Remote, *Store) {
	t.Helper()
	store := NewStore(4)
	srv := transport.NewServer()
	RegisterService(srv, store)
	l, err := transport.TCP{}.Listen("127.0.0.1:39481", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	client, err := transport.TCP{}.Dial("127.0.0.1:39481")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return NewRemote(client), store
}

func exerciseAPI(t *testing.T, api API, backing *Store) {
	t.Helper()
	// Clock.
	if api.NowNs() <= 0 {
		t.Fatal("remote clock dead")
	}

	// Task table.
	st := mkTask(500)
	if !api.AddTask(st) {
		t.Fatal("AddTask failed")
	}
	if api.AddTask(st) {
		t.Fatal("duplicate AddTask succeeded remotely")
	}
	got, ok := api.GetTask(st.Spec.ID)
	if !ok || got.Spec.Function != "f" {
		t.Fatalf("GetTask: %+v %v", got, ok)
	}
	n := nodeID(50)
	api.SetTaskStatus(st.Spec.ID, types.TaskRunning, n, types.NilWorkerID, "")
	got, _ = api.GetTask(st.Spec.ID)
	if got.Status != types.TaskRunning || got.Node != n {
		t.Fatalf("after SetTaskStatus: %+v", got)
	}
	if !api.CASTaskStatus(st.Spec.ID, []types.TaskStatus{types.TaskRunning}, types.TaskFinished) {
		t.Fatal("CAS lost")
	}
	if api.CASTaskStatus(st.Spec.ID, []types.TaskStatus{types.TaskRunning}, types.TaskFinished) {
		t.Fatal("CAS from wrong state won")
	}
	if api.RecordTaskRetry(st.Spec.ID) != 1 {
		t.Fatal("retry count wrong")
	}
	if len(api.Tasks()) != 1 {
		t.Fatal("Tasks scan wrong")
	}

	// Object table with subscription.
	obj := st.Spec.ReturnID(0)
	api.EnsureObject(obj, st.Spec.ID)
	sub := api.SubscribeObjectReady(obj)
	defer sub.Close()
	api.AddObjectLocation(obj, n, 64)
	select {
	case <-sub.C():
	case <-time.After(2 * time.Second):
		t.Fatal("object-ready not delivered over transport")
	}
	info, ok := api.GetObject(obj)
	if !ok || info.State != types.ObjectReady || info.Size != 64 {
		t.Fatalf("GetObject: %+v %v", info, ok)
	}
	api.RemoveObjectLocation(obj, n)
	info, _ = api.GetObject(obj)
	if info.State != types.ObjectLost {
		t.Fatalf("state after removal: %v", info.State)
	}
	if len(api.Objects()) != 1 {
		t.Fatal("Objects scan wrong")
	}

	// Spill pub/sub across the wire.
	spillSub := api.SubscribeSpill()
	defer spillSub.Close()
	api.PublishSpill(st.Spec)
	select {
	case raw := <-spillSub.C():
		spec, err := DecodeSpillSpec(raw)
		if err != nil || spec.ID != st.Spec.ID {
			t.Fatalf("spill payload: %v %v", spec.ID, err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("spill not delivered over transport")
	}

	// Node table.
	nodeSub := api.SubscribeNodeEvents()
	defer nodeSub.Close()
	api.RegisterNode(types.NodeInfo{ID: n, Addr: "w1", Total: types.CPU(2)})
	select {
	case <-nodeSub.C():
	case <-time.After(2 * time.Second):
		t.Fatal("node event not delivered")
	}
	api.Heartbeat(n, 3, types.CPU(1), types.StoreStats{UsedBytes: 64})
	ninfo, ok := api.GetNode(n)
	if !ok || ninfo.QueueLen != 3 || ninfo.Store.UsedBytes != 64 {
		t.Fatalf("GetNode: %+v %v", ninfo, ok)
	}
	api.MarkNodeDead(n)
	ninfo, _ = api.GetNode(n)
	if ninfo.Alive {
		t.Fatal("node still alive")
	}
	if len(api.Nodes()) != 1 {
		t.Fatal("Nodes scan wrong")
	}

	// Functions + events.
	api.RegisterFunction(FunctionInfo{Name: "g", NumReturns: 1})
	if !api.HasFunction("g") || len(api.Functions()) != 1 {
		t.Fatal("function table wrong")
	}
	api.LogEvent(types.Event{Kind: "custom", Node: n})
	found := false
	for _, ev := range api.Events() {
		if ev.Kind == "custom" {
			found = true
		}
	}
	if !found {
		t.Fatal("event lost")
	}

	// The remote writes must be visible in the backing store directly.
	if _, ok := backing.GetTask(st.Spec.ID); !ok {
		t.Fatal("remote write did not reach backing store")
	}
}

func TestRemoteAPIOverInproc(t *testing.T) {
	api, backing := remoteFixture(t)
	exerciseAPI(t, api, backing)
}

func TestRemoteAPIOverTCP(t *testing.T) {
	api, backing := remoteOverTCP(t)
	exerciseAPI(t, api, backing)
}

func TestRemoteTaskStatusSubscription(t *testing.T) {
	api, _ := remoteFixture(t)
	st := mkTask(600)
	api.AddTask(st)
	sub := api.SubscribeTaskStatus(st.Spec.ID)
	defer sub.Close()
	api.SetTaskStatus(st.Spec.ID, types.TaskFinished, types.NilNodeID, types.NilWorkerID, "")
	select {
	case msg := <-sub.C():
		if types.TaskStatus(msg[0]) != types.TaskFinished {
			t.Fatalf("status payload %v", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("status not delivered")
	}
}

func TestRemoteSubCloseIdempotent(t *testing.T) {
	api, _ := remoteFixture(t)
	sub := api.SubscribeSpill()
	sub.Close()
	sub.Close()
}
