package gcs

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/types"
)

// ShardedConfig configures a Sharded control-plane client.
type ShardedConfig struct {
	// Network dials shard services and the map service.
	Network transport.Network
	// MapAddr is where the supervisor serves MethodShardMap.
	MapAddr string
	// RetryWindow bounds how long a keyed call retries against a dead or
	// restarting shard before giving up (returning the zero value, matching
	// Remote's forgiving read semantics). Default 3s — generously above a
	// supervised restart, far below a human-visible hang.
	RetryWindow time.Duration
	// Metrics, when set, records per-method/per-shard RPC latency
	// histograms ("gcs.rpc.ns;method=...;shard=N") and retry/error
	// counters. Nil disables instrumentation.
	Metrics *metrics.Registry
}

// Sharded implements API over a set of independently-failing control-plane
// shard services. Every keyed operation routes through a versioned shard
// map fetched at connect time; when a shard stops answering — or answers
// as the wrong shard, the redirect signal of a stale map — the client
// refreshes the map and retries against the shard's new incarnation.
// Fan-out reads (Tasks, Objects, Nodes, Events…) merge per-shard partial
// scans and degrade gracefully: a dead shard's rows are simply absent
// until it recovers. Subscriptions transparently resubscribe to restarted
// shards, so long-lived consumers (the lifetime GC loop, the global
// scheduler's spill feed) survive control-plane failover without ever
// seeing their channel close.
type Sharded struct {
	cfg ShardedConfig

	mu          sync.Mutex
	smap        ShardMap
	conns       map[int]transport.Client
	mapConn     transport.Client
	lastRefresh time.Time
	subs        map[*resilientSub]struct{}
	closed      chan struct{}
	closeOnce   sync.Once
}

// NewSharded connects to the shard-map service and fetches the initial
// map. The map fetch must succeed — a client that cannot learn the
// cluster geometry cannot route anything.
func NewSharded(cfg ShardedConfig) (*Sharded, error) {
	if cfg.Network == nil || cfg.MapAddr == "" {
		return nil, fmt.Errorf("gcs: sharded client needs Network and MapAddr")
	}
	if cfg.RetryWindow <= 0 {
		cfg.RetryWindow = 3 * time.Second
	}
	s := &Sharded{
		cfg:    cfg,
		conns:  make(map[int]transport.Client),
		subs:   make(map[*resilientSub]struct{}),
		closed: make(chan struct{}),
	}
	if err := s.refreshMap(true); err != nil {
		return nil, err
	}
	return s, nil
}

// SetMetrics attaches an RPC-latency registry after construction (the
// node wires its own registry into the client it was handed). Call before
// the client sees concurrent traffic; nil detaches.
func (s *Sharded) SetMetrics(reg *metrics.Registry) { s.cfg.Metrics = reg }

// Map returns the client's current view of the shard map.
func (s *Sharded) Map() ShardMap {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.smap
}

// Close releases every connection and terminates resubscription loops.
// Subscriptions obtained from this client close their channels.
func (s *Sharded) Close() {
	s.closeOnce.Do(func() { close(s.closed) })
	s.mu.Lock()
	subs := make([]*resilientSub, 0, len(s.subs))
	for sub := range s.subs {
		subs = append(subs, sub)
	}
	for _, c := range s.conns {
		c.Close()
	}
	s.conns = make(map[int]transport.Client)
	if s.mapConn != nil {
		s.mapConn.Close()
		s.mapConn = nil
	}
	s.mu.Unlock()
	for _, sub := range subs {
		sub.Close()
	}
}

// refreshMap re-fetches the shard map. Refreshes are rate-limited so a
// burst of failing calls does not hammer the map service; force bypasses
// the limit (initial connect).
func (s *Sharded) refreshMap(force bool) error {
	s.mu.Lock()
	if !force && time.Since(s.lastRefresh) < 2*time.Millisecond {
		s.mu.Unlock()
		return nil
	}
	s.lastRefresh = time.Now()
	conn := s.mapConn
	s.mu.Unlock()

	if conn == nil {
		var err error
		conn, err = s.cfg.Network.Dial(s.cfg.MapAddr)
		if err != nil {
			return fmt.Errorf("gcs: dial shard map %s: %w", s.cfg.MapAddr, err)
		}
	}
	resp, err := conn.Call(MethodShardMap, nil)
	if err != nil {
		conn.Close()
		s.mu.Lock()
		if s.mapConn == conn {
			s.mapConn = nil
		}
		s.mu.Unlock()
		return fmt.Errorf("gcs: fetch shard map: %w", err)
	}
	m, err := codec.DecodeAs[ShardMap](resp)
	if err != nil {
		conn.Close()
		s.mu.Lock()
		if s.mapConn == conn {
			s.mapConn = nil
		}
		s.mu.Unlock()
		return err
	}
	s.mu.Lock()
	closed := false
	select {
	case <-s.closed:
		closed = true
	default:
	}
	if closed || (s.mapConn != nil && s.mapConn != conn) {
		// Raced Close, or another refresh dialed concurrently.
		conn.Close()
	} else {
		s.mapConn = conn
	}
	if m.Version >= s.smap.Version {
		s.smap = m
	}
	s.mu.Unlock()
	return nil
}

// conn returns a verified connection to shard idx, dialing if needed. The
// post-dial identity check is the redirect path: a server answering with a
// different index means the client's map is stale.
func (s *Sharded) conn(idx int) (transport.Client, error) {
	s.mu.Lock()
	if c, ok := s.conns[idx]; ok {
		s.mu.Unlock()
		return c, nil
	}
	var addr string
	if idx < len(s.smap.Shards) {
		addr = s.smap.Shards[idx].Addr
	}
	s.mu.Unlock()
	if addr == "" {
		return nil, fmt.Errorf("gcs: no shard %d in map", idx)
	}
	c, err := s.cfg.Network.Dial(addr)
	if err != nil {
		return nil, err
	}
	resp, err := c.Call(MethodShardInfo, nil)
	if err != nil {
		c.Close()
		return nil, err
	}
	info, err := codec.DecodeAs[ShardInfo](resp)
	if err != nil || info.Index != idx {
		c.Close()
		s.refreshMap(false) // redirect: address no longer serves this shard
		return nil, fmt.Errorf("gcs: shard %d redirected (got %d)", idx, info.Index)
	}
	s.mu.Lock()
	select {
	case <-s.closed:
		// Raced Close: nothing will ever close a late-cached connection.
		s.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("gcs: sharded client closed")
	default:
	}
	if prev, ok := s.conns[idx]; ok {
		s.mu.Unlock()
		c.Close()
		return prev, nil
	}
	s.conns[idx] = c
	s.mu.Unlock()
	return c, nil
}

// dropConn discards a connection observed failing (if still cached).
func (s *Sharded) dropConn(idx int, c transport.Client) {
	s.mu.Lock()
	if cur, ok := s.conns[idx]; ok && cur == c {
		delete(s.conns, idx)
	}
	s.mu.Unlock()
	c.Close()
}

// shardCall performs one keyed unary RPC with failover: on error it drops
// the connection, refreshes the map, and retries until RetryWindow
// elapses. ok=false after exhaustion.
func shardCall[R any](s *Sharded, key, method string, req any) (R, bool) {
	var zero R
	payload, err := codec.Encode(req)
	if err != nil {
		return zero, false
	}
	deadline := time.Now().Add(s.cfg.RetryWindow)
	backoff := time.Millisecond
	for {
		idx := s.Map().ShardForKey(key)
		c, err := s.conn(idx)
		if err == nil {
			start := time.Now()
			resp, callErr := c.Call(method, payload)
			if s.cfg.Metrics != nil {
				s.cfg.Metrics.Histogram(fmt.Sprintf("gcs.rpc.ns;method=%s;shard=%d", method, idx)).Observe(time.Since(start).Nanoseconds())
			}
			if callErr == nil {
				out, decErr := codec.DecodeAs[R](resp)
				if decErr != nil {
					return zero, false
				}
				return out, true
			}
			s.dropConn(idx, c)
			s.cfg.Metrics.Counter(fmt.Sprintf("gcs.rpc.retries;method=%s;shard=%d", method, idx)).Inc()
		}
		if time.Now().After(deadline) {
			return zero, false
		}
		s.refreshMap(false)
		select {
		case <-s.closed:
			return zero, false
		case <-time.After(backoff):
		}
		if backoff < 50*time.Millisecond {
			backoff *= 2
		}
	}
}

// scanShard is one shard's slice of a fan-out read: two quick attempts,
// then give up so a dead shard degrades the view instead of stalling it.
func scanShard[R any](s *Sharded, idx int, method string, req any) (R, bool) {
	var zero R
	payload, err := codec.Encode(req)
	if err != nil {
		return zero, false
	}
	for attempt := 0; attempt < 2; attempt++ {
		c, err := s.conn(idx)
		if err != nil {
			s.refreshMap(false)
			continue
		}
		resp, callErr := c.Call(method, payload)
		if callErr != nil {
			s.dropConn(idx, c)
			s.refreshMap(false)
			continue
		}
		out, decErr := codec.DecodeAs[R](resp)
		if decErr != nil {
			return zero, false
		}
		return out, true
	}
	return zero, false
}

// fanOut merges one scan method across every shard.
func fanOut[R any](s *Sharded, method string) []R {
	n := s.Map().NumShards()
	var out []R
	for idx := 0; idx < n; idx++ {
		if part, ok := scanShard[[]R](s, idx, method, nil); ok {
			out = append(out, part...)
		}
	}
	return out
}

// --- API: clock and liveness ---

// NowNs implements API: the first healthy shard's clock. Shards stamp
// their durable epochs together at first boot, so any shard's clock
// agrees with the others to within boot skew — and each stays monotonic
// across its own restarts.
func (s *Sharded) NowNs() int64 {
	for idx := 0; idx < s.Map().NumShards(); idx++ {
		if v, ok := scanShard[int64](s, idx, MethodNowNs, nil); ok {
			return v
		}
	}
	return 0
}

// Ping implements Pinger: true only when every shard answers. A single
// dead shard makes reads unreliable (its records look absent), so callers
// distinguishing missing-record from unreachable need the conjunction.
func (s *Sharded) Ping() bool {
	n := s.Map().NumShards()
	if n == 0 {
		return false
	}
	for idx := 0; idx < n; idx++ {
		if _, ok := scanShard[int64](s, idx, MethodNowNs, nil); !ok {
			return false
		}
	}
	return true
}

// --- API: task table ---

// AddTask implements API.
func (s *Sharded) AddTask(state types.TaskState) bool {
	v, _ := shardCall[bool](s, TaskKey(state.Spec.ID), MethodAddTask, state)
	return v
}

// GetTask implements API.
func (s *Sharded) GetTask(id types.TaskID) (types.TaskState, bool) {
	v, ok := shardCall[maybeTask](s, TaskKey(id), MethodGetTask, id)
	return v.State, ok && v.OK
}

// SetTaskStatus implements API.
func (s *Sharded) SetTaskStatus(id types.TaskID, status types.TaskStatus, node types.NodeID, worker types.WorkerID, errMsg string) {
	shardCall[bool](s, TaskKey(id), MethodSetTaskStatus, setStatusReq{ID: id, Status: status, Node: node, Worker: worker, Err: errMsg})
}

// SetTaskStatusAt implements API.
func (s *Sharded) SetTaskStatusAt(id types.TaskID, status types.TaskStatus, node types.NodeID, worker types.WorkerID, errMsg string, atNs int64) {
	shardCall[bool](s, TaskKey(id), MethodSetTaskStatus, setStatusReq{ID: id, Status: status, Node: node, Worker: worker, Err: errMsg, AtNs: atNs})
}

// CASTaskStatus implements API. Like refcount deltas, a CAS claim is not
// response-idempotent (the retry would lose to its own commit), so each
// logical CAS carries a token held fixed across retries; the shard's
// durable CASOps ring reports the duplicate as won.
func (s *Sharded) CASTaskStatus(id types.TaskID, from []types.TaskStatus, to types.TaskStatus) bool {
	v, _ := shardCall[bool](s, TaskKey(id), MethodCASTaskStatus,
		casStatusReq{ID: id, From: from, To: to, Op: newOpToken()})
	return v
}

// RecordTaskRetry implements API: tokenized like CAS and refcount deltas,
// so a redelivered increment never burns an extra retry attempt.
func (s *Sharded) RecordTaskRetry(id types.TaskID) int {
	v, _ := shardCall[int](s, TaskKey(id), MethodRecordTaskRetry,
		recordRetryReq{ID: id, Op: newOpToken()})
	return v
}

// ClaimTask implements API. Claims are CAS-shaped (a retry would lose to
// its own commit), so each logical claim carries a fixed token; the returned
// sequence is the base the new owner's ledger deltas must exceed.
func (s *Sharded) ClaimTask(id types.TaskID, from []types.TaskStatus, to types.TaskStatus, owner types.NodeID) (uint64, bool) {
	v, ok := shardCall[claimTaskResp](s, TaskKey(id), MethodClaimTask,
		claimTaskReq{ID: id, From: from, To: to, Owner: owner, Op: newOpToken()})
	return v.Seq, ok && v.OK
}

// ModifyTaskStates implements API: one owner-ledger flush, partitioned by
// the shard owning each task record and delivered as one RPC per shard,
// mirroring ModifyObjectRefCounts. Every partition carries the caller's
// token (dedup is recorded per task), partitions fly concurrently, and a
// shard unreachable past the retry window contributes its whole partition
// to the failed set so the owner requeues those deltas under the same token.
func (s *Sharded) ModifyTaskStates(node types.NodeID, deltas []types.TaskStateDelta, op uint64) []types.TaskID {
	if len(deltas) == 0 {
		return nil
	}
	m := s.Map()
	parts := make(map[int][]types.TaskStateDelta)
	for _, d := range deltas {
		idx := m.ShardForKey(TaskKey(d.ID))
		parts[idx] = append(parts[idx], d)
	}
	var (
		mu     sync.Mutex
		failed []types.TaskID
		wg     sync.WaitGroup
	)
	for _, part := range parts {
		wg.Add(1)
		go func(part []types.TaskStateDelta) {
			defer wg.Done()
			// Routed by any member task: shardCall re-resolves the key each
			// retry, so a failover re-routes the batch to the new incarnation.
			key := TaskKey(part[0].ID)
			if _, ok := shardCall[bool](s, key, MethodModifyTaskStates, types.TaskLedgerBatch{Node: node, Deltas: part, Op: op}); !ok {
				mu.Lock()
				for _, d := range part {
					failed = append(failed, d.ID)
				}
				mu.Unlock()
			}
		}(part)
	}
	wg.Wait()
	return failed
}

// Tasks implements API: merged scan, restored to submit order.
func (s *Sharded) Tasks() []types.TaskState {
	out := fanOut[types.TaskState](s, MethodTasks)
	sort.Slice(out, func(i, j int) bool { return out[i].SubmittedNs < out[j].SubmittedNs })
	return out
}

// StalePendingTasks implements API: each shard filters on its own clock,
// so only the (normally tiny) stale set crosses the wire.
func (s *Sharded) StalePendingTasks(olderThanNs int64) []types.TaskSpec {
	n := s.Map().NumShards()
	var out []types.TaskSpec
	for idx := 0; idx < n; idx++ {
		if part, ok := scanShard[[]types.TaskSpec](s, idx, MethodStalePending, olderThanNs); ok {
			out = append(out, part...)
		}
	}
	return out
}

// LiveTasksOwnedBy implements API: task records are spread over every
// shard, so the owner scan fans out. A shard that stays unreachable makes
// the view incomplete (false) — the owner-death transfer keeps the dead
// owner on its sweep list and retries rather than re-owning a partial set.
func (s *Sharded) LiveTasksOwnedBy(owner types.NodeID) ([]types.TaskState, bool) {
	n := s.Map().NumShards()
	var out []types.TaskState
	complete := true
	for idx := 0; idx < n; idx++ {
		if part, ok := scanShard[[]types.TaskState](s, idx, MethodLiveTasksOwned, owner); ok {
			out = append(out, part...)
		} else {
			complete = false
		}
	}
	return out, complete
}

// SubscribeTaskStatus implements API.
func (s *Sharded) SubscribeTaskStatus(id types.TaskID) Sub {
	return s.newResilientSub(StreamTaskStatus, []byte(id.Hex()), s.shardIdx(TaskKey(id)))
}

// --- API: object table ---

// EnsureObject implements API.
func (s *Sharded) EnsureObject(id types.ObjectID, producer types.TaskID) {
	shardCall[bool](s, ObjectKey(id), MethodEnsureObject, ensureObjectReq{ID: id, Producer: producer})
}

// EnsureObjects implements API: one lineage flush, partitioned by the
// shard owning each object record. Ensure is naturally idempotent (heal
// a missing producer), so partitions carry no token; a shard unreachable
// past the retry window contributes its partition to the failed set.
func (s *Sharded) EnsureObjects(producers map[types.ObjectID]types.TaskID) []types.ObjectID {
	if len(producers) == 0 {
		return nil
	}
	m := s.Map()
	parts := make(map[int]map[types.ObjectID]types.TaskID)
	for id, p := range producers {
		idx := m.ShardForKey(ObjectKey(id))
		part := parts[idx]
		if part == nil {
			part = make(map[types.ObjectID]types.TaskID)
			parts[idx] = part
		}
		part[id] = p
	}
	var (
		mu     sync.Mutex
		failed []types.ObjectID
		wg     sync.WaitGroup
	)
	for _, part := range parts {
		wg.Add(1)
		go func(part map[types.ObjectID]types.TaskID) {
			defer wg.Done()
			var key string
			for id := range part {
				key = ObjectKey(id)
				break
			}
			if _, ok := shardCall[bool](s, key, MethodEnsureObjects, ensureObjectsReq{Producers: part}); !ok {
				mu.Lock()
				for id := range part {
					failed = append(failed, id)
				}
				mu.Unlock()
			}
		}(part)
	}
	wg.Wait()
	return failed
}

// AddObjectLocation implements API.
func (s *Sharded) AddObjectLocation(id types.ObjectID, node types.NodeID, size int64) {
	shardCall[bool](s, ObjectKey(id), MethodAddObjLocation, objLocationReq{ID: id, Node: node, Size: size})
}

// RemoveObjectLocation implements API.
func (s *Sharded) RemoveObjectLocation(id types.ObjectID, node types.NodeID) {
	shardCall[bool](s, ObjectKey(id), MethodRemoveObjLoc, objLocationReq{ID: id, Node: node})
}

// GetObject implements API.
func (s *Sharded) GetObject(id types.ObjectID) (types.ObjectInfo, bool) {
	v, ok := shardCall[maybeObject](s, ObjectKey(id), MethodGetObject, id)
	return v.Info, ok && v.OK
}

// Objects implements API.
func (s *Sharded) Objects() []types.ObjectInfo {
	return fanOut[types.ObjectInfo](s, MethodObjects)
}

// ModifyObjectRefCount implements API. Refcount deltas are the one
// mutation where blind retry corrupts state (a shard can commit the delta
// and die before answering), so every logical call carries an idempotency
// token that stays fixed across retries; the shard's durable RefOps ring
// recognizes the duplicate and skips the re-apply.
func (s *Sharded) ModifyObjectRefCount(id types.ObjectID, delta int64) int64 {
	v, _ := shardCall[int64](s, ObjectKey(id), MethodModifyObjRef,
		modifyRefReq{ID: id, Delta: delta, Op: newOpToken()})
	return v
}

// ModifyObjectRefCounts implements API: one ledger flush, partitioned by
// owning shard and delivered as one RPC per shard — the whole point of
// batching: a flush costs round trips proportional to the shards touched,
// not the objects. Every partition carries the caller's token (dedup is
// recorded per object, so slices of one batch cannot confuse each other)
// and partitions fly concurrently. A shard unreachable past the retry
// window contributes its whole partition to the failed set; the caller
// requeues those deltas under the same token, which is what makes the
// eventual redelivery safe against a crash that committed the partition
// but lost the ack.
func (s *Sharded) ModifyObjectRefCounts(node types.NodeID, deltas map[types.ObjectID]int64, op uint64) []types.ObjectID {
	if len(deltas) == 0 {
		return nil
	}
	m := s.Map()
	parts := make(map[int]map[types.ObjectID]int64)
	for id, d := range deltas {
		idx := m.ShardForKey(ObjectKey(id))
		p := parts[idx]
		if p == nil {
			p = make(map[types.ObjectID]int64)
			parts[idx] = p
		}
		p[id] = d
	}
	var (
		mu     sync.Mutex
		failed []types.ObjectID
		wg     sync.WaitGroup
	)
	for _, part := range parts {
		wg.Add(1)
		go func(part map[types.ObjectID]int64) {
			defer wg.Done()
			// Routed by any member object: shardCall re-resolves the key each
			// retry, so a failover re-routes the batch to the new incarnation.
			var key string
			for id := range part {
				key = ObjectKey(id)
				break
			}
			if _, ok := shardCall[bool](s, key, MethodModifyObjRefs, modifyRefsReq{Node: node, Deltas: part, Op: op}); !ok {
				mu.Lock()
				for id := range part {
					failed = append(failed, id)
				}
				mu.Unlock()
			}
		}(part)
	}
	wg.Wait()
	return failed
}

// SweepDeadNodeRefs implements API: object records are spread over every
// shard, so the sweep fans out. A shard that stays unreachable makes the
// result negative — "incomplete, retry later" — and the caller (the global
// scheduler's death sweep) keeps the node on its sweep list; the sweep is
// idempotent so the overlap is free.
func (s *Sharded) SweepDeadNodeRefs(node types.NodeID) int {
	n := s.Map().NumShards()
	total := 0
	complete := true
	for idx := 0; idx < n; idx++ {
		if v, ok := scanShard[int](s, idx, MethodSweepDeadRefs, sweepRefsReq{Node: node}); ok {
			total += v
		} else {
			complete = false
		}
	}
	if !complete {
		return -1
	}
	return total
}

// newOpToken returns a random non-zero idempotency token.
func newOpToken() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 1 // degraded but non-zero; collisions only dedup spuriously
	}
	return binary.BigEndian.Uint64(b[:]) | 1
}

// MarkObjectSpilled implements API.
func (s *Sharded) MarkObjectSpilled(id types.ObjectID, node types.NodeID, spilled bool) {
	shardCall[bool](s, ObjectKey(id), MethodMarkObjSpilled, markSpilledReq{ID: id, Node: node, Spilled: spilled})
}

// SubscribeObjectReady implements API.
func (s *Sharded) SubscribeObjectReady(id types.ObjectID) Sub {
	return s.newResilientSub(StreamObjReady, []byte(id.Hex()), s.shardIdx(ObjectKey(id)))
}

// SubscribeObjectGC implements API: merged over every shard (refcount
// zero-transitions publish on the shard owning the object record).
func (s *Sharded) SubscribeObjectGC() Sub {
	return s.newResilientSub(StreamObjGC, nil, s.allShards())
}

// --- API: placement-group table ---

// CreatePlacementGroup implements API. Create is naturally idempotent
// (insert-if-absent keyed by group ID), so a retry across a shard crash
// needs no token; the retry's false return leaves the original record.
func (s *Sharded) CreatePlacementGroup(spec types.PlacementGroupSpec) bool {
	v, _ := shardCall[bool](s, GroupKey(spec.ID), MethodCreateGroup, spec)
	return v
}

// RemovePlacementGroup implements API (idempotent: Removed is terminal).
func (s *Sharded) RemovePlacementGroup(id types.PlacementGroupID) bool {
	v, _ := shardCall[bool](s, GroupKey(id), MethodRemoveGroup, id)
	return v
}

// GetPlacementGroup implements API.
func (s *Sharded) GetPlacementGroup(id types.PlacementGroupID) (types.PlacementGroupInfo, bool) {
	v, ok := shardCall[maybeGroup](s, GroupKey(id), MethodGetGroup, id)
	return v.Info, ok && v.OK
}

// PlacementGroups implements API.
func (s *Sharded) PlacementGroups() []types.PlacementGroupInfo {
	return fanOut[types.PlacementGroupInfo](s, MethodGroups)
}

// CASPlacementGroupState implements API. Like task-status CAS, a gang
// claim is not response-idempotent (the retry would lose to its own
// commit, stranding the group in Placing), so each logical CAS carries a
// token held fixed across retries; the shard's durable MutOps ring reports
// the duplicate as won.
func (s *Sharded) CASPlacementGroupState(id types.PlacementGroupID, from []types.PlacementGroupState, to types.PlacementGroupState, bundleNodes []types.NodeID) bool {
	v, _ := shardCall[bool](s, GroupKey(id), MethodCASGroup,
		casGroupReq{ID: id, From: from, To: to, Nodes: bundleNodes, Op: newOpToken()})
	return v
}

// CASPlacementGroupStateClaim implements API: the claim-token gang CAS,
// with the same crash-retry idempotency token as the claimless form.
func (s *Sharded) CASPlacementGroupStateClaim(id types.PlacementGroupID, from []types.PlacementGroupState, to types.PlacementGroupState, bundleNodes []types.NodeID, claim uint64) bool {
	v, _ := shardCall[bool](s, GroupKey(id), MethodCASGroup,
		casGroupReq{ID: id, From: from, To: to, Nodes: bundleNodes, Claim: claim, Op: newOpToken()})
	return v
}

// SubscribePlacementGroups implements API: merged over every shard (each
// group's transitions publish on the shard owning its record).
func (s *Sharded) SubscribePlacementGroups() Sub {
	return s.newResilientSub(StreamGroups, nil, s.allShards())
}

// --- API: job table ---

// CreateJob implements API. Create is naturally idempotent
// (insert-if-absent keyed by job ID), so a retry across a shard crash
// needs no token; the retry's false return leaves the original record.
func (s *Sharded) CreateJob(spec types.JobSpec) bool {
	v, _ := shardCall[bool](s, JobKey(spec.ID), MethodCreateJob, spec)
	return v
}

// GetJob implements API.
func (s *Sharded) GetJob(id types.JobID) (types.JobInfo, bool) {
	v, ok := shardCall[maybeJob](s, JobKey(id), MethodGetJob, id)
	return v.Info, ok && v.OK
}

// Jobs implements API: merged scan, creation-ordered.
func (s *Sharded) Jobs() []types.JobInfo {
	out := fanOut[types.JobInfo](s, MethodJobs)
	sort.Slice(out, func(i, j int) bool { return out[i].CreatedNs < out[j].CreatedNs })
	return out
}

// CASJobState implements API. Like every other state CAS, a job-state
// transition is not response-idempotent (the retry would lose to its own
// commit and a StopJob would report failure after succeeding), so each
// logical CAS carries a token held fixed across retries; the shard's
// durable MutOps ring reports the duplicate as won.
func (s *Sharded) CASJobState(id types.JobID, from []types.JobState, to types.JobState) bool {
	v, _ := shardCall[bool](s, JobKey(id), MethodCASJob,
		casJobReq{ID: id, From: from, To: to, Op: newOpToken()})
	return v
}

// MarkJobPurged implements API (idempotent: PurgedNs only moves off zero).
func (s *Sharded) MarkJobPurged(id types.JobID) bool {
	v, _ := shardCall[bool](s, JobKey(id), MethodMarkJobPurged, id)
	return v
}

// JobTasks implements API: task records are spread over every shard, so
// the scan fans out. A shard that stays unreachable makes the view
// incomplete (false) — the reclaim pass must not declare a job drained
// off a partial scan, so it retries instead.
func (s *Sharded) JobTasks(job types.JobID) ([]types.TaskState, bool) {
	n := s.Map().NumShards()
	var out []types.TaskState
	complete := true
	for idx := 0; idx < n; idx++ {
		if part, ok := scanShard[[]types.TaskState](s, idx, MethodJobTasks, job); ok {
			out = append(out, part...)
		} else {
			complete = false
		}
	}
	return out, complete
}

// ForceReleaseObjects implements API: partitioned by the shard owning
// each object record, one RPC per shard, partitions in flight
// concurrently. Force release is idempotent (counts clamp to zero), so
// partitions carry no token; a shard unreachable past the retry window
// contributes its partition to the failed set and the reclaim pass
// retries it.
func (s *Sharded) ForceReleaseObjects(ids []types.ObjectID) []types.ObjectID {
	if len(ids) == 0 {
		return nil
	}
	m := s.Map()
	parts := make(map[int][]types.ObjectID)
	for _, id := range ids {
		idx := m.ShardForKey(ObjectKey(id))
		parts[idx] = append(parts[idx], id)
	}
	var (
		mu     sync.Mutex
		failed []types.ObjectID
		wg     sync.WaitGroup
	)
	for _, part := range parts {
		wg.Add(1)
		go func(part []types.ObjectID) {
			defer wg.Done()
			// Routed by any member object: shardCall re-resolves the key each
			// retry, so a failover re-routes the batch to the new incarnation.
			key := ObjectKey(part[0])
			if _, ok := shardCall[bool](s, key, MethodForceReleaseObjs, objectIDsReq{IDs: part}); !ok {
				mu.Lock()
				failed = append(failed, part...)
				mu.Unlock()
			}
		}(part)
	}
	wg.Wait()
	return failed
}

// PurgeObjects implements API: partitioned like ForceReleaseObjects. A
// shard reports back the subset of its partition still undrained; an
// unreachable shard's whole partition is reported remaining so the
// reclaim pass retries it.
func (s *Sharded) PurgeObjects(ids []types.ObjectID) []types.ObjectID {
	if len(ids) == 0 {
		return nil
	}
	m := s.Map()
	parts := make(map[int][]types.ObjectID)
	for _, id := range ids {
		idx := m.ShardForKey(ObjectKey(id))
		parts[idx] = append(parts[idx], id)
	}
	var (
		mu        sync.Mutex
		remaining []types.ObjectID
		wg        sync.WaitGroup
	)
	for _, part := range parts {
		wg.Add(1)
		go func(part []types.ObjectID) {
			defer wg.Done()
			key := ObjectKey(part[0])
			v, ok := shardCall[objectIDsReq](s, key, MethodPurgeObjects, objectIDsReq{IDs: part})
			mu.Lock()
			if !ok {
				remaining = append(remaining, part...)
			} else {
				remaining = append(remaining, v.IDs...)
			}
			mu.Unlock()
		}(part)
	}
	wg.Wait()
	return remaining
}

// PurgeJobTasks implements API: fans out like JobTasks; an unreachable
// shard makes the pass incomplete (false) so the reclaim pass re-runs it
// before stamping the job purged.
func (s *Sharded) PurgeJobTasks(job types.JobID) (int, bool) {
	n := s.Map().NumShards()
	total := 0
	complete := true
	for idx := 0; idx < n; idx++ {
		if v, ok := scanShard[int](s, idx, MethodPurgeJobTasks, job); ok {
			total += v
		} else {
			complete = false
		}
	}
	return total, complete
}

// SubscribeJobs implements API: merged over every shard (each job's
// transitions publish on the shard owning its record).
func (s *Sharded) SubscribeJobs() Sub {
	return s.newResilientSub(StreamJobs, nil, s.allShards())
}

// --- API: spillover ---

// PublishSpill implements API. The publish lands on the shard owning the
// task record; the fast path is pub/sub, and the global scheduler's
// pending-task sweep is the durable fallback for a publish dropped by a
// shard crash.
func (s *Sharded) PublishSpill(spec types.TaskSpec) {
	shardCall[bool](s, TaskKey(spec.ID), MethodPublishSpill, spec)
}

// SubscribeSpill implements API: merged over every shard.
func (s *Sharded) SubscribeSpill() Sub {
	return s.newResilientSub(StreamSpill, nil, s.allShards())
}

// --- API: node table ---

// RegisterNode implements API.
func (s *Sharded) RegisterNode(info types.NodeInfo) {
	shardCall[bool](s, NodeKey(info.ID), MethodRegisterNode, info)
}

// Heartbeat implements API.
func (s *Sharded) Heartbeat(id types.NodeID, queueLen int, avail types.Resources, store types.StoreStats) {
	shardCall[bool](s, NodeKey(id), MethodHeartbeat, heartbeatReq{ID: id, Queue: queueLen, Avail: avail, Store: store})
}

// MarkNodeDead implements API.
func (s *Sharded) MarkNodeDead(id types.NodeID) {
	shardCall[bool](s, NodeKey(id), MethodMarkNodeDead, id)
}

// CASNodeState implements API: tokenized like every other state CAS, so a
// drain decision retried across a shard crash never loses to its own
// earlier commit.
func (s *Sharded) CASNodeState(id types.NodeID, from []types.NodeState, to types.NodeState) bool {
	v, _ := shardCall[bool](s, NodeKey(id), MethodCASNodeState,
		casNodeReq{ID: id, From: from, To: to, Op: newOpToken()})
	return v
}

// GetNode implements API.
func (s *Sharded) GetNode(id types.NodeID) (types.NodeInfo, bool) {
	v, ok := shardCall[maybeNode](s, NodeKey(id), MethodGetNode, id)
	return v.Info, ok && v.OK
}

// Nodes implements API.
func (s *Sharded) Nodes() []types.NodeInfo {
	out := fanOut[types.NodeInfo](s, MethodNodes)
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Hex() < out[j].ID.Hex() })
	return out
}

// SubscribeNodeEvents implements API: merged over every shard.
func (s *Sharded) SubscribeNodeEvents() Sub {
	return s.newResilientSub(StreamNodes, nil, s.allShards())
}

// --- API: function table ---

// RegisterFunction implements API.
func (s *Sharded) RegisterFunction(info FunctionInfo) {
	shardCall[bool](s, FuncKey(info.Name), MethodRegisterFunction, info)
}

// HasFunction implements API.
func (s *Sharded) HasFunction(name string) bool {
	v, _ := shardCall[bool](s, FuncKey(name), MethodHasFunction, name)
	return v
}

// Functions implements API.
func (s *Sharded) Functions() []FunctionInfo {
	out := fanOut[FunctionInfo](s, MethodFunctions)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// --- API: event log ---

// LogEvent implements API.
func (s *Sharded) LogEvent(ev types.Event) {
	shardCall[bool](s, EventKey(ev.Node), MethodLogEvent, ev)
}

// Events implements API: merged, time-ordered (shards share one epoch).
func (s *Sharded) Events() []types.Event {
	out := fanOut[types.Event](s, MethodEvents)
	sort.Slice(out, func(i, j int) bool { return out[i].TimeNs < out[j].TimeNs })
	return out
}

// PublishTelemetry implements TelemetrySink: the snapshot and spans land
// on the shard owning the node record, so the per-node state and its
// telemetry fail (and recover) together.
func (s *Sharded) PublishTelemetry(id types.NodeID, snap metrics.Snapshot, spans []metrics.SpanRecord) {
	shardCall[bool](s, NodeKey(id), MethodPublishTelemetry, publishTelemetryReq{ID: id, Snap: snap, Spans: spans})
}

// Telemetry implements TelemetrySink: merged across shards.
func (s *Sharded) Telemetry() []TelemetrySnapshot {
	out := fanOut[TelemetrySnapshot](s, MethodTelemetry)
	sort.Slice(out, func(i, j int) bool { return out[i].Node.String() < out[j].Node.String() })
	return out
}

// Spans implements TelemetrySink: merged across shards, time-ordered.
func (s *Sharded) Spans() []metrics.SpanRecord {
	out := fanOut[metrics.SpanRecord](s, MethodSpans)
	sort.Slice(out, func(i, j int) bool { return out[i].StartNs < out[j].StartNs })
	return out
}

// --- resilient subscriptions ---

func (s *Sharded) shardIdx(key string) []int {
	return []int{s.Map().ShardForKey(key)}
}

func (s *Sharded) allShards() []int {
	out := make([]int, s.Map().NumShards())
	for i := range out {
		out[i] = i
	}
	return out
}

// resilientSub keeps one logical subscription alive across shard crashes:
// per shard, a loop (re)dials, (re)opens the stream, and forwards
// messages; a stream collapse triggers a map refresh and reattachment to
// the shard's next incarnation. The out channel only closes on Close, so
// consumers never mistake a control-plane restart for end-of-stream.
type resilientSub struct {
	s    *Sharded
	out  chan []byte
	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// newResilientSub attaches to the given shards and blocks until each
// currently-reachable shard has acked the subscription — preserving the
// no-missed-publish-after-return guarantee for live shards. A dead shard
// cannot publish, so it is attached optimistically by its loop instead of
// blocking the caller.
func (s *Sharded) newResilientSub(method string, payload []byte, shards []int) Sub {
	r := &resilientSub{
		s:    s,
		out:  make(chan []byte, 64),
		stop: make(chan struct{}),
	}
	var firstAttach sync.WaitGroup
	for _, idx := range shards {
		r.wg.Add(1)
		firstAttach.Add(1)
		go r.run(idx, method, payload, &firstAttach)
	}
	go func() {
		r.wg.Wait()
		close(r.out)
	}()
	firstAttach.Wait()
	s.mu.Lock()
	if s.subs != nil {
		s.subs[r] = struct{}{}
	}
	s.mu.Unlock()
	return r
}

func (r *resilientSub) run(idx int, method string, payload []byte, firstAttach *sync.WaitGroup) {
	defer r.wg.Done()
	attachOnce := sync.OnceFunc(firstAttach.Done)
	defer attachOnce()
	backoff := time.Millisecond
	attempts := 0
	for {
		select {
		case <-r.stop:
			return
		case <-r.s.closed:
			return
		default:
		}
		stream := r.attach(idx, method, payload)
		if stream != nil {
			attachOnce()
			backoff = time.Millisecond
			r.forward(stream)
			stream.Close()
		} else {
			attempts++
			if attempts >= 2 {
				// The shard is down, not flapping: release the constructor
				// (a dead shard has nothing to publish) and keep retrying
				// in the background until it comes back.
				attachOnce()
			}
		}
		r.s.refreshMap(false)
		select {
		case <-r.stop:
			return
		case <-r.s.closed:
			return
		case <-time.After(backoff):
		}
		if backoff < 50*time.Millisecond {
			backoff *= 2
		}
	}
}

// attach opens the stream and waits for the service's established ack.
func (r *resilientSub) attach(idx int, method string, payload []byte) transport.Stream {
	c, err := r.s.conn(idx)
	if err != nil {
		return nil
	}
	stream, err := c.OpenStream(method, payload)
	if err != nil {
		r.s.dropConn(idx, c)
		return nil
	}
	if _, err := stream.Recv(); err != nil {
		stream.Close()
		r.s.dropConn(idx, c)
		return nil
	}
	return stream
}

// forward pumps stream messages to out until the stream dies. A watcher
// closes the stream on Close so a Recv parked on a quiet subscription
// cannot outlive the subscription.
func (r *resilientSub) forward(stream transport.Stream) {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-r.stop:
			stream.Close()
		case <-r.s.closed:
			stream.Close()
		case <-done:
		}
	}()
	for {
		msg, err := stream.Recv()
		if err != nil {
			return
		}
		select {
		case r.out <- msg:
		case <-r.stop:
			return
		case <-r.s.closed:
			return
		}
	}
}

// C implements Sub.
func (r *resilientSub) C() <-chan []byte { return r.out }

// Close implements Sub.
func (r *resilientSub) Close() {
	r.once.Do(func() {
		close(r.stop)
		r.s.mu.Lock()
		delete(r.s.subs, r)
		r.s.mu.Unlock()
	})
}

var _ API = (*Sharded)(nil)
var _ Pinger = (*Sharded)(nil)
