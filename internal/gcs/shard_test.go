package gcs

import (
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/types"
)

func testTaskID(b byte) types.TaskID {
	var id types.TaskID
	id[0] = b
	return id
}

func testObjectID(b byte) types.ObjectID {
	var id types.ObjectID
	id[0] = b
	return id
}

func testNodeID(b byte) types.NodeID {
	var id types.NodeID
	id[0] = b
	return id
}

func TestShardMapRoutingStableAndSpread(t *testing.T) {
	m := ShardMap{Version: 1, Shards: make([]ShardInfo, 4)}
	hit := make(map[int]int)
	for i := 0; i < 64; i++ {
		key := TaskKey(testTaskID(byte(i)))
		idx := m.ShardForKey(key)
		if idx != m.ShardForKey(key) {
			t.Fatal("routing not deterministic")
		}
		if idx < 0 || idx >= 4 {
			t.Fatalf("out-of-range shard %d", idx)
		}
		hit[idx]++
	}
	if len(hit) < 3 {
		t.Fatalf("64 keys landed on only %d/4 shards", len(hit))
	}
}

// TestShardServiceDurableRestart is the single-shard failover contract:
// state committed before a kill is all there after a restart from
// snapshot + WAL, the incarnation bumps, and the durable clock epoch keeps
// NowNs monotonic across the crash.
func TestShardServiceDurableRestart(t *testing.T) {
	nw := transport.NewInproc(0)
	svc, err := StartShard(ShardConfig{
		Index: 0, Addr: "shard-0", Network: nw, DataDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	client, err := nw.Dial("shard-0")
	if err != nil {
		t.Fatal(err)
	}
	remote := NewRemote(client)
	task := testTaskID(1)
	obj := testObjectID(2)
	if !remote.AddTask(types.TaskState{Spec: types.TaskSpec{ID: task, Function: "f"}, Status: types.TaskPending}) {
		t.Fatal("AddTask failed")
	}
	remote.EnsureObject(obj, task)
	remote.AddObjectLocation(obj, testNodeID(3), 128)
	if n := remote.ModifyObjectRefCount(obj, 2); n != 2 {
		t.Fatalf("refcount = %d", n)
	}
	// Checkpoint now; post-checkpoint mutations must come back via WAL.
	if err := svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n := remote.ModifyObjectRefCount(obj, 1); n != 3 {
		t.Fatalf("refcount = %d", n)
	}
	preKillNow := remote.NowNs()

	svc.Kill()
	if remote.Ping() {
		t.Fatal("killed shard still answering")
	}
	if _, ok := remote.GetTask(task); ok {
		t.Fatal("killed shard served a read")
	}

	if err := svc.Restart(); err != nil {
		t.Fatal(err)
	}
	if svc.Incarnation() != 2 {
		t.Fatalf("incarnation = %d, want 2", svc.Incarnation())
	}
	// The old client's connection routes to the old (gated) server on the
	// in-process network; a fresh dial reaches the new incarnation.
	client2, err := nw.Dial("shard-0")
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRemote(client2)
	if st, ok := r2.GetTask(task); !ok || st.Spec.Function != "f" {
		t.Fatal("task record lost across restart")
	}
	info, ok := r2.GetObject(obj)
	if !ok {
		t.Fatal("object record lost across restart")
	}
	if info.RefCount != 3 {
		t.Fatalf("refcount after snapshot+WAL recovery = %d, want 3", info.RefCount)
	}
	if !info.HasLocation(testNodeID(3)) || info.Size != 128 {
		t.Fatal("object location/size lost across restart")
	}
	if now := r2.NowNs(); now < preKillNow {
		t.Fatalf("clock went backwards across restart: %d -> %d", preKillNow, now)
	}
}

func newTestSupervisor(t *testing.T, shards int, auto time.Duration) (*Supervisor, *transport.Inproc) {
	t.Helper()
	nw := transport.NewInproc(0)
	sup, err := NewSupervisor(SupervisorConfig{
		Shards:      shards,
		Network:     nw,
		MapAddr:     "gcs",
		DataDir:     t.TempDir(),
		AutoRestart: auto,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sup.Close)
	return sup, nw
}

func newTestSharded(t *testing.T, nw *transport.Inproc) *Sharded {
	t.Helper()
	s, err := NewSharded(ShardedConfig{Network: nw, MapAddr: "gcs"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestShardedClientEndToEnd drives the whole API surface through the
// sharded client: keyed writes route to owning shards, fan-out reads merge
// every shard's slice.
func TestShardedClientEndToEnd(t *testing.T) {
	sup, nw := newTestSupervisor(t, 3, 0)
	s := newTestSharded(t, nw)

	if got := s.Map().NumShards(); got != 3 {
		t.Fatalf("map has %d shards", got)
	}
	if sup.Map().Version != s.Map().Version {
		t.Fatal("client map version diverged at connect")
	}

	// Spread records across shards.
	for i := byte(0); i < 12; i++ {
		task := testTaskID(i)
		if !s.AddTask(types.TaskState{Spec: types.TaskSpec{ID: task, Function: "fn"}, Status: types.TaskPending}) {
			t.Fatalf("AddTask %d", i)
		}
		obj := testObjectID(i)
		s.EnsureObject(obj, task)
		s.AddObjectLocation(obj, testNodeID(1), int64(i))
	}
	if got := len(s.Tasks()); got != 12 {
		t.Fatalf("merged task scan = %d rows", got)
	}
	if got := len(s.Objects()); got != 12 {
		t.Fatalf("merged object scan = %d rows", got)
	}
	if st, ok := s.GetTask(testTaskID(7)); !ok || st.Spec.Function != "fn" {
		t.Fatal("keyed GetTask failed")
	}
	if !s.CASTaskStatus(testTaskID(7), []types.TaskStatus{types.TaskPending}, types.TaskQueued) {
		t.Fatal("CAS through sharded client failed")
	}

	s.RegisterNode(types.NodeInfo{ID: testNodeID(1), Addr: "n1", Total: types.CPU(4)})
	s.Heartbeat(testNodeID(1), 3, types.CPU(2), types.StoreStats{})
	if n, ok := s.GetNode(testNodeID(1)); !ok || n.QueueLen != 3 {
		t.Fatal("node heartbeat lost")
	}
	if len(s.Nodes()) != 1 {
		t.Fatal("node scan wrong")
	}

	s.RegisterFunction(FunctionInfo{Name: "fn", NumReturns: 1})
	if !s.HasFunction("fn") || len(s.Functions()) != 1 {
		t.Fatal("function table through sharded client broken")
	}

	s.LogEvent(types.Event{Kind: "test", Node: testNodeID(1)})
	if len(s.Events()) == 0 {
		t.Fatal("event log empty")
	}
	if !s.Ping() {
		t.Fatal("ping with all shards up")
	}
}

// TestShardedFailoverKeyedCall: a keyed call issued while the owning shard
// is down retries through the map and lands on the restarted incarnation —
// the client-visible form of failover.
func TestShardedFailoverKeyedCall(t *testing.T) {
	sup, nw := newTestSupervisor(t, 2, 0)
	s := newTestSharded(t, nw)

	task := testTaskID(9)
	victim := s.Map().ShardForKey(TaskKey(task))
	if !s.AddTask(types.TaskState{Spec: types.TaskSpec{ID: task, Function: "g"}, Status: types.TaskPending}) {
		t.Fatal("AddTask")
	}
	sup.KillShard(victim)
	if s.Ping() {
		t.Fatal("ping must fail with a dead shard")
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		sup.RestartShard(victim)
	}()
	// Issued against the dead shard; must block-retry and then succeed.
	st, ok := s.GetTask(task)
	if !ok || st.Spec.Function != "g" {
		t.Fatal("keyed call did not fail over to the restarted shard")
	}
	if !s.Ping() {
		t.Fatal("ping after recovery")
	}
	if sup.Shard(victim).Incarnation() != 2 {
		t.Fatalf("incarnation = %d", sup.Shard(victim).Incarnation())
	}
}

// TestResilientSubscriptionSurvivesShardRestart: one Sub outlives a shard
// kill+restart — messages published to the new incarnation still arrive,
// and the GC channel's eligible-set replay covers the publish that died
// with the old incarnation.
func TestResilientSubscriptionSurvivesShardRestart(t *testing.T) {
	sup, nw := newTestSupervisor(t, 2, 0)
	s := newTestSharded(t, nw)

	objA, objB := testObjectID(1), testObjectID(2)
	s.EnsureObject(objA, types.NilTaskID)
	s.AddObjectLocation(objA, testNodeID(1), 8)
	s.EnsureObject(objB, types.NilTaskID)
	s.AddObjectLocation(objB, testNodeID(1), 8)

	sub := s.SubscribeObjectGC()
	defer sub.Close()

	// recv drains until the target ID arrives (restarted shards may replay
	// other still-eligible objects first) or the wait elapses.
	recv := func(target types.ObjectID, wait time.Duration) bool {
		deadline := time.After(wait)
		for {
			select {
			case msg, ok := <-sub.C():
				if !ok {
					t.Fatal("subscription channel closed unexpectedly")
				}
				var id types.ObjectID
				copy(id[:], msg)
				if id == target {
					return true
				}
			case <-deadline:
				return false
			}
		}
	}

	// Zero-transition before the kill: delivered live.
	s.ModifyObjectRefCount(objA, 1)
	s.ModifyObjectRefCount(objA, -1)
	if !recv(objA, 2*time.Second) {
		t.Fatal("live GC publish not delivered")
	}

	// Kill BOTH shards (whole control plane down), restart, and make a new
	// zero-transition: the same Sub must deliver it via resubscription.
	sup.KillShard(0)
	sup.KillShard(1)
	time.Sleep(10 * time.Millisecond)
	if err := sup.RestartShard(0); err != nil {
		t.Fatal(err)
	}
	if err := sup.RestartShard(1); err != nil {
		t.Fatal(err)
	}
	s.ModifyObjectRefCount(objB, 1)
	s.ModifyObjectRefCount(objB, -1)
	if !recv(objB, 5*time.Second) {
		t.Fatal("GC publish after shard restart not delivered to old Sub")
	}
}

// TestModifyRefCountOpIdempotent pins the retry-dedup contract: a delta
// redelivered with the same op token (a retry whose original response was
// lost to a shard crash) is applied exactly once, and the dedup ring is
// durable with the record.
func TestModifyRefCountOpIdempotent(t *testing.T) {
	s := NewStore(2)
	obj := testObjectID(7)
	s.EnsureObject(obj, types.NilTaskID)

	const opA, opB, opC = 11, 22, 33
	if n := s.ModifyObjectRefCountOp(obj, 1, opA); n != 1 {
		t.Fatalf("first apply = %d", n)
	}
	if n := s.ModifyObjectRefCountOp(obj, 1, opA); n != 1 {
		t.Fatalf("duplicate apply changed count to %d", n)
	}
	if n := s.ModifyObjectRefCountOp(obj, 1, opB); n != 2 {
		t.Fatalf("distinct op = %d, want 2", n)
	}
	if n := s.ModifyObjectRefCountOp(obj, -1, opC); n != 1 {
		t.Fatalf("release = %d", n)
	}
	if n := s.ModifyObjectRefCountOp(obj, -1, opC); n != 1 {
		t.Fatalf("duplicate release = %d, want 1", n)
	}
	// Token 0 disables dedup (legacy / non-retrying callers).
	if n := s.ModifyObjectRefCountOp(obj, 1, 0); n != 2 {
		t.Fatalf("op 0 = %d", n)
	}
	if n := s.ModifyObjectRefCountOp(obj, 1, 0); n != 3 {
		t.Fatalf("op 0 repeat = %d (must not dedup)", n)
	}
}

// TestCASOpDuplicateReportsWon: a CAS retried with the same token after
// its commit survived a crash (ack lost) must report won — the retry
// losing to its own commit would strand the task claimed-but-unowned.
func TestCASOpDuplicateReportsWon(t *testing.T) {
	s := NewStore(2)
	task := testTaskID(8)
	s.AddTask(types.TaskState{Spec: types.TaskSpec{ID: task}, Status: types.TaskPending})

	const op = 77
	if !s.CASTaskStatusOp(task, []types.TaskStatus{types.TaskPending}, types.TaskQueued, op) {
		t.Fatal("first CAS lost")
	}
	if !s.CASTaskStatusOp(task, []types.TaskStatus{types.TaskPending}, types.TaskQueued, op) {
		t.Fatal("retried CAS lost to its own commit")
	}
	// A genuinely distinct contender still loses.
	if s.CASTaskStatusOp(task, []types.TaskStatus{types.TaskPending}, types.TaskQueued, 78) {
		t.Fatal("second contender won an already-claimed CAS")
	}
	if st, _ := s.GetTask(task); st.Status != types.TaskQueued {
		t.Fatalf("status = %v", st.Status)
	}
}

// TestAddTaskDuplicateHealsPendingMarker: a retried AddTask whose first
// commit lost its marker to a crash re-establishes it.
func TestAddTaskDuplicateHealsPendingMarker(t *testing.T) {
	s := NewStore(2)
	task := testTaskID(9)
	state := types.TaskState{Spec: types.TaskSpec{ID: task}, Status: types.TaskPending}
	s.AddTask(state)
	// Simulate the crash window: record durable, marker lost.
	s.DB().Delete(keyPendIdx + task.Hex())
	if got := s.StalePendingTasks(0); len(got) != 0 {
		t.Fatal("setup: marker should be gone")
	}
	if s.AddTask(state) {
		t.Fatal("duplicate AddTask reported fresh")
	}
	if got := s.StalePendingTasks(0); len(got) != 1 {
		t.Fatal("duplicate AddTask did not heal the pending marker")
	}
}

// TestRefOpDuplicateRepublishesGC: a refcount release retried after its
// commit survived but its GC marker/publish died must redo those side
// effects, or the object leaks forever.
func TestRefOpDuplicateRepublishesGC(t *testing.T) {
	s := NewStore(2)
	obj := testObjectID(6)
	s.EnsureObject(obj, types.NilTaskID)
	s.AddObjectLocation(obj, testNodeID(1), 8)
	s.ModifyObjectRefCountOp(obj, 1, 91)
	s.ModifyObjectRefCountOp(obj, -1, 92)
	// Simulate the crash window: delta committed, marker lost.
	s.DB().Delete(keyGCIdx + obj.Hex())
	if got := s.GCEligibleObjects(); len(got) != 0 {
		t.Fatal("setup: marker should be gone")
	}
	sub := s.SubscribeObjectGC()
	defer sub.Close()
	if n := s.ModifyObjectRefCountOp(obj, -1, 92); n != 0 {
		t.Fatalf("duplicate release applied: count %d", n)
	}
	if got := s.GCEligibleObjects(); len(got) != 1 {
		t.Fatal("duplicate delivery did not re-establish the GC marker")
	}
	select {
	case msg := <-sub.C():
		var id types.ObjectID
		copy(id[:], msg)
		if id != obj {
			t.Fatalf("republished %v", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("duplicate delivery did not republish on the GC channel")
	}
}

// TestRebuildIndexesReconciles: boot-time reconciliation restores markers
// stranded by a torn WAL tail and retires markers whose records moved on.
func TestRebuildIndexesReconciles(t *testing.T) {
	s := NewStore(2)
	node := testNodeID(1)
	pending, claimed := testTaskID(10), testTaskID(11)
	s.AddTask(types.TaskState{Spec: types.TaskSpec{ID: pending}, Status: types.TaskPending})
	s.AddTask(types.TaskState{Spec: types.TaskSpec{ID: claimed}, Status: types.TaskPending})
	s.CASTaskStatus(claimed, []types.TaskStatus{types.TaskPending}, types.TaskQueued)
	garbage := testObjectID(12)
	s.EnsureObject(garbage, types.NilTaskID)
	s.AddObjectLocation(garbage, node, 8)
	s.ModifyObjectRefCount(garbage, 1)
	s.ModifyObjectRefCount(garbage, -1)

	// Tear the indexes both ways: drop a live marker, plant a stale one.
	s.DB().Delete(keyPendIdx + pending.Hex())
	s.DB().Put(keyPendIdx+claimed.Hex(), nil)
	s.DB().Delete(keyGCIdx + garbage.Hex())

	s.RebuildIndexes()

	got := s.StalePendingTasks(0)
	if len(got) != 1 || got[0].ID != pending {
		t.Fatalf("pending index after rebuild: %v", got)
	}
	if elig := s.GCEligibleObjects(); len(elig) != 1 || elig[0] != garbage {
		t.Fatalf("gc index after rebuild: %v", elig)
	}
}

// TestStalePendingIndexFollowsTransitions: the PENDING marker index that
// backs the rescue sweep tracks status transitions both ways, so the
// sweep sees exactly the unclaimed set.
func TestStalePendingIndexFollowsTransitions(t *testing.T) {
	s := NewStore(2)
	task := testTaskID(3)
	s.AddTask(types.TaskState{Spec: types.TaskSpec{ID: task, Function: "f"}, Status: types.TaskPending})
	if got := s.StalePendingTasks(0); len(got) != 1 || got[0].ID != task {
		t.Fatalf("pending index after AddTask: %v", got)
	}
	// Claimed: leaves the index.
	if !s.CASTaskStatus(task, []types.TaskStatus{types.TaskPending}, types.TaskQueued) {
		t.Fatal("CAS")
	}
	if got := s.StalePendingTasks(0); len(got) != 0 {
		t.Fatalf("claimed task still in pending index: %v", got)
	}
	// Retry path: reset to PENDING re-enters the index.
	s.SetTaskStatus(task, types.TaskPending, types.NilNodeID, types.NilWorkerID, "retry")
	if got := s.StalePendingTasks(0); len(got) != 1 {
		t.Fatalf("reset-to-pending task missing from index: %v", got)
	}
	// And the age filter respects the reset's fresh LastTransitionNs.
	if got := s.StalePendingTasks(int64(time.Hour)); len(got) != 0 {
		t.Fatalf("fresh reset counted as stale: %v", got)
	}
}

// TestGCEligibleIndexRetires: the GC-eligible marker set retires entries
// when an object is re-retained from zero or fully drained, so subscribe
// replay stays proportional to outstanding garbage.
func TestGCEligibleIndexRetires(t *testing.T) {
	s := NewStore(2)
	node := testNodeID(1)
	obj := testObjectID(4)
	s.EnsureObject(obj, types.NilTaskID)
	s.AddObjectLocation(obj, node, 8)

	s.ModifyObjectRefCount(obj, 1)
	if got := s.GCEligibleObjects(); len(got) != 0 {
		t.Fatalf("retained object eligible: %v", got)
	}
	s.ModifyObjectRefCount(obj, -1)
	if got := s.GCEligibleObjects(); len(got) != 1 || got[0] != obj {
		t.Fatalf("zero-transition not indexed: %v", got)
	}
	// Re-retained from zero: no longer eligible.
	s.ModifyObjectRefCount(obj, 1)
	if got := s.GCEligibleObjects(); len(got) != 0 {
		t.Fatalf("re-retained object still eligible: %v", got)
	}
	// Back to eligible, then fully drained: marker retires for good.
	s.ModifyObjectRefCount(obj, -1)
	s.RemoveObjectLocation(obj, node)
	if got := s.GCEligibleObjects(); len(got) != 0 {
		t.Fatalf("fully-drained object still replayed: %v", got)
	}
}

// TestGCEligibleReplayOnSubscribe: an object already GC-eligible when a
// subscriber attaches (its zero-transition publish was lost with a crash)
// is replayed to the new subscription.
func TestGCEligibleReplayOnSubscribe(t *testing.T) {
	sup, nw := newTestSupervisor(t, 2, 0)
	_ = sup
	s := newTestSharded(t, nw)

	obj := testObjectID(5)
	s.EnsureObject(obj, types.NilTaskID)
	s.AddObjectLocation(obj, testNodeID(1), 8)
	s.ModifyObjectRefCount(obj, 1)
	s.ModifyObjectRefCount(obj, -1)
	// No subscriber existed for that transition; the publish went nowhere.

	sub := s.SubscribeObjectGC()
	defer sub.Close()
	select {
	case msg := <-sub.C():
		var id types.ObjectID
		copy(id[:], msg)
		if id != obj {
			t.Fatalf("replayed %v, want %v", id, obj)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("eligible object not replayed to late subscriber")
	}
}
