package gcs

import (
	"repro/internal/codec"
	"repro/internal/types"
)

// decodeSpec decodes a spill-channel payload back into a TaskSpec.
func decodeSpec(raw []byte) (types.TaskSpec, error) {
	return codec.DecodeAs[types.TaskSpec](raw)
}

// DecodeSpillSpec is the exported form used by spill subscribers (the
// global scheduler).
func DecodeSpillSpec(raw []byte) (types.TaskSpec, error) { return decodeSpec(raw) }

// DecodeNodeEvent decodes a node-membership payload.
func DecodeNodeEvent(raw []byte) (types.NodeInfo, error) {
	return codec.DecodeAs[types.NodeInfo](raw)
}

// DecodeGroupEvent decodes a placement-group channel payload.
func DecodeGroupEvent(raw []byte) (types.PlacementGroupInfo, error) {
	return codec.DecodeAs[types.PlacementGroupInfo](raw)
}

// DecodeJobEvent decodes a job channel payload.
func DecodeJobEvent(raw []byte) (types.JobInfo, error) {
	return codec.DecodeAs[types.JobInfo](raw)
}
