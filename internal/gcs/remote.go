package gcs

import (
	"io"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/types"
)

// Remote implements API over a transport connection to a control-plane
// service (RegisterService). Worker processes in multi-process clusters use
// it; the interface is identical to the in-process Store, so every other
// component is oblivious to the deployment mode.
type Remote struct {
	client transport.Client
	// reg, when set, records per-method RPC latency histograms
	// ("gcs.rpc.ns;method=..."). Nil disables with one branch.
	reg *metrics.Registry
}

// NewRemote wraps a connected transport client.
func NewRemote(client transport.Client) *Remote { return &Remote{client: client} }

// SetMetrics attaches a registry; every subsequent RPC records a
// per-method latency histogram. Call before sharing the client.
func (r *Remote) SetMetrics(reg *metrics.Registry) { r.reg = reg }

// call performs one unary RPC, decoding the response into R. Errors are
// swallowed into zero values for read paths (a dead control plane looks
// like an empty one; components keep polling), matching the in-process
// Store's forgiving semantics.
func call[R any](r *Remote, method string, req any) (R, bool) {
	var zero R
	payload, err := codec.Encode(req)
	if err != nil {
		return zero, false
	}
	start := time.Now()
	resp, err := r.client.Call(method, payload)
	if r.reg != nil {
		r.reg.Histogram("gcs.rpc.ns;method=" + method).Observe(time.Since(start).Nanoseconds())
		if err != nil {
			r.reg.Counter("gcs.rpc.errors;method=" + method).Inc()
		}
	}
	if err != nil {
		return zero, false
	}
	out, err := codec.DecodeAs[R](resp)
	if err != nil {
		return zero, false
	}
	return out, true
}

// NowNs implements API.
func (r *Remote) NowNs() int64 {
	v, _ := call[int64](r, MethodNowNs, nil)
	return v
}

// Ping implements Pinger: a round trip to the service proves liveness.
func (r *Remote) Ping() bool {
	_, ok := call[int64](r, MethodNowNs, nil)
	return ok
}

// AddTask implements API.
func (r *Remote) AddTask(state types.TaskState) bool {
	v, _ := call[bool](r, MethodAddTask, state)
	return v
}

// GetTask implements API.
func (r *Remote) GetTask(id types.TaskID) (types.TaskState, bool) {
	v, ok := call[maybeTask](r, MethodGetTask, id)
	return v.State, ok && v.OK
}

// SetTaskStatus implements API.
func (r *Remote) SetTaskStatus(id types.TaskID, status types.TaskStatus, node types.NodeID, worker types.WorkerID, errMsg string) {
	call[bool](r, MethodSetTaskStatus, setStatusReq{ID: id, Status: status, Node: node, Worker: worker, Err: errMsg})
}

// SetTaskStatusAt implements API.
func (r *Remote) SetTaskStatusAt(id types.TaskID, status types.TaskStatus, node types.NodeID, worker types.WorkerID, errMsg string, atNs int64) {
	call[bool](r, MethodSetTaskStatus, setStatusReq{ID: id, Status: status, Node: node, Worker: worker, Err: errMsg, AtNs: atNs})
}

// CASTaskStatus implements API.
func (r *Remote) CASTaskStatus(id types.TaskID, from []types.TaskStatus, to types.TaskStatus) bool {
	v, _ := call[bool](r, MethodCASTaskStatus, casStatusReq{ID: id, From: from, To: to})
	return v
}

// ClaimTask implements API.
func (r *Remote) ClaimTask(id types.TaskID, from []types.TaskStatus, to types.TaskStatus, owner types.NodeID) (uint64, bool) {
	v, ok := call[claimTaskResp](r, MethodClaimTask, claimTaskReq{ID: id, From: from, To: to, Owner: owner})
	return v.Seq, ok && v.OK
}

// RecordTaskRetry implements API.
func (r *Remote) RecordTaskRetry(id types.TaskID) int {
	v, _ := call[int](r, MethodRecordTaskRetry, recordRetryReq{ID: id})
	return v
}

// ModifyTaskStates implements API: the single-head control plane takes the
// whole batch in one RPC, mirroring ModifyObjectRefCounts — on transport
// failure every delta is reported failed so the ledger requeues the batch
// under the same token.
func (r *Remote) ModifyTaskStates(node types.NodeID, deltas []types.TaskStateDelta, op uint64) []types.TaskID {
	if len(deltas) == 0 {
		return nil
	}
	if _, ok := call[bool](r, MethodModifyTaskStates, types.TaskLedgerBatch{Node: node, Deltas: deltas, Op: op}); !ok {
		failed := make([]types.TaskID, 0, len(deltas))
		for _, d := range deltas {
			failed = append(failed, d.ID)
		}
		return failed
	}
	return nil
}

// LiveTasksOwnedBy implements API.
func (r *Remote) LiveTasksOwnedBy(owner types.NodeID) ([]types.TaskState, bool) {
	v, ok := call[[]types.TaskState](r, MethodLiveTasksOwned, owner)
	return v, ok
}

// Tasks implements API.
func (r *Remote) Tasks() []types.TaskState {
	v, _ := call[[]types.TaskState](r, MethodTasks, nil)
	return v
}

// StalePendingTasks implements API.
func (r *Remote) StalePendingTasks(olderThanNs int64) []types.TaskSpec {
	v, _ := call[[]types.TaskSpec](r, MethodStalePending, olderThanNs)
	return v
}

// EnsureObject implements API.
func (r *Remote) EnsureObject(id types.ObjectID, producer types.TaskID) {
	call[bool](r, MethodEnsureObject, ensureObjectReq{ID: id, Producer: producer})
}

// EnsureObjects implements API: one RPC for the whole batch; on transport
// failure every ID is reported failed so the ledger requeues them.
func (r *Remote) EnsureObjects(producers map[types.ObjectID]types.TaskID) []types.ObjectID {
	if len(producers) == 0 {
		return nil
	}
	if _, ok := call[bool](r, MethodEnsureObjects, ensureObjectsReq{Producers: producers}); !ok {
		failed := make([]types.ObjectID, 0, len(producers))
		for id := range producers {
			failed = append(failed, id)
		}
		return failed
	}
	return nil
}

// AddObjectLocation implements API.
func (r *Remote) AddObjectLocation(id types.ObjectID, node types.NodeID, size int64) {
	call[bool](r, MethodAddObjLocation, objLocationReq{ID: id, Node: node, Size: size})
}

// RemoveObjectLocation implements API.
func (r *Remote) RemoveObjectLocation(id types.ObjectID, node types.NodeID) {
	call[bool](r, MethodRemoveObjLoc, objLocationReq{ID: id, Node: node})
}

// GetObject implements API.
func (r *Remote) GetObject(id types.ObjectID) (types.ObjectInfo, bool) {
	v, ok := call[maybeObject](r, MethodGetObject, id)
	return v.Info, ok && v.OK
}

// Objects implements API.
func (r *Remote) Objects() []types.ObjectInfo {
	v, _ := call[[]types.ObjectInfo](r, MethodObjects, nil)
	return v
}

// ModifyObjectRefCount implements API.
func (r *Remote) ModifyObjectRefCount(id types.ObjectID, delta int64) int64 {
	v, _ := call[int64](r, MethodModifyObjRef, modifyRefReq{ID: id, Delta: delta})
	return v
}

// ModifyObjectRefCounts implements API: the single-head control plane
// takes the whole batch in one RPC. The token still rides along — the
// head's RefOps rings make an at-least-once redelivery (e.g. a client-side
// retry layered above Remote) harmless.
func (r *Remote) ModifyObjectRefCounts(node types.NodeID, deltas map[types.ObjectID]int64, op uint64) []types.ObjectID {
	if len(deltas) == 0 {
		return nil
	}
	if _, ok := call[bool](r, MethodModifyObjRefs, modifyRefsReq{Node: node, Deltas: deltas, Op: op}); !ok {
		failed := make([]types.ObjectID, 0, len(deltas))
		for id := range deltas {
			failed = append(failed, id)
		}
		return failed
	}
	return nil
}

// SweepDeadNodeRefs implements API.
func (r *Remote) SweepDeadNodeRefs(node types.NodeID) int {
	v, ok := call[int](r, MethodSweepDeadRefs, sweepRefsReq{Node: node})
	if !ok {
		return -1
	}
	return v
}

// MarkObjectSpilled implements API.
func (r *Remote) MarkObjectSpilled(id types.ObjectID, node types.NodeID, spilled bool) {
	call[bool](r, MethodMarkObjSpilled, markSpilledReq{ID: id, Node: node, Spilled: spilled})
}

// CreatePlacementGroup implements API.
func (r *Remote) CreatePlacementGroup(spec types.PlacementGroupSpec) bool {
	v, _ := call[bool](r, MethodCreateGroup, spec)
	return v
}

// RemovePlacementGroup implements API.
func (r *Remote) RemovePlacementGroup(id types.PlacementGroupID) bool {
	v, _ := call[bool](r, MethodRemoveGroup, id)
	return v
}

// GetPlacementGroup implements API.
func (r *Remote) GetPlacementGroup(id types.PlacementGroupID) (types.PlacementGroupInfo, bool) {
	v, ok := call[maybeGroup](r, MethodGetGroup, id)
	return v.Info, ok && v.OK
}

// PlacementGroups implements API.
func (r *Remote) PlacementGroups() []types.PlacementGroupInfo {
	v, _ := call[[]types.PlacementGroupInfo](r, MethodGroups, nil)
	return v
}

// CASPlacementGroupState implements API.
func (r *Remote) CASPlacementGroupState(id types.PlacementGroupID, from []types.PlacementGroupState, to types.PlacementGroupState, bundleNodes []types.NodeID) bool {
	v, _ := call[bool](r, MethodCASGroup, casGroupReq{ID: id, From: from, To: to, Nodes: bundleNodes})
	return v
}

// CASPlacementGroupStateClaim implements API.
func (r *Remote) CASPlacementGroupStateClaim(id types.PlacementGroupID, from []types.PlacementGroupState, to types.PlacementGroupState, bundleNodes []types.NodeID, claim uint64) bool {
	v, _ := call[bool](r, MethodCASGroup, casGroupReq{ID: id, From: from, To: to, Nodes: bundleNodes, Claim: claim})
	return v
}

// CreateJob implements API.
func (r *Remote) CreateJob(spec types.JobSpec) bool {
	v, _ := call[bool](r, MethodCreateJob, spec)
	return v
}

// GetJob implements API.
func (r *Remote) GetJob(id types.JobID) (types.JobInfo, bool) {
	v, ok := call[maybeJob](r, MethodGetJob, id)
	return v.Info, ok && v.OK
}

// Jobs implements API.
func (r *Remote) Jobs() []types.JobInfo {
	v, _ := call[[]types.JobInfo](r, MethodJobs, nil)
	return v
}

// CASJobState implements API.
func (r *Remote) CASJobState(id types.JobID, from []types.JobState, to types.JobState) bool {
	v, _ := call[bool](r, MethodCASJob, casJobReq{ID: id, From: from, To: to})
	return v
}

// MarkJobPurged implements API.
func (r *Remote) MarkJobPurged(id types.JobID) bool {
	v, _ := call[bool](r, MethodMarkJobPurged, id)
	return v
}

// JobTasks implements API.
func (r *Remote) JobTasks(job types.JobID) ([]types.TaskState, bool) {
	v, ok := call[[]types.TaskState](r, MethodJobTasks, job)
	return v, ok
}

// ForceReleaseObjects implements API: one RPC for the whole batch; on
// transport failure every ID is reported failed so the reclaim pass
// retries them.
func (r *Remote) ForceReleaseObjects(ids []types.ObjectID) []types.ObjectID {
	if len(ids) == 0 {
		return nil
	}
	if _, ok := call[bool](r, MethodForceReleaseObjs, objectIDsReq{IDs: ids}); !ok {
		return append([]types.ObjectID(nil), ids...)
	}
	return nil
}

// PurgeObjects implements API: on transport failure every ID is reported
// still-remaining so the reclaim pass retries the batch.
func (r *Remote) PurgeObjects(ids []types.ObjectID) []types.ObjectID {
	if len(ids) == 0 {
		return nil
	}
	v, ok := call[objectIDsReq](r, MethodPurgeObjects, objectIDsReq{IDs: ids})
	if !ok {
		return append([]types.ObjectID(nil), ids...)
	}
	return v.IDs
}

// PurgeJobTasks implements API.
func (r *Remote) PurgeJobTasks(job types.JobID) (int, bool) {
	v, ok := call[int](r, MethodPurgeJobTasks, job)
	return v, ok
}

// PublishSpill implements API.
func (r *Remote) PublishSpill(spec types.TaskSpec) {
	call[bool](r, MethodPublishSpill, spec)
}

// RegisterNode implements API.
func (r *Remote) RegisterNode(info types.NodeInfo) {
	call[bool](r, MethodRegisterNode, info)
}

// Heartbeat implements API.
func (r *Remote) Heartbeat(id types.NodeID, queueLen int, avail types.Resources, store types.StoreStats) {
	call[bool](r, MethodHeartbeat, heartbeatReq{ID: id, Queue: queueLen, Avail: avail, Store: store})
}

// MarkNodeDead implements API.
func (r *Remote) MarkNodeDead(id types.NodeID) {
	call[bool](r, MethodMarkNodeDead, id)
}

// CASNodeState implements API.
func (r *Remote) CASNodeState(id types.NodeID, from []types.NodeState, to types.NodeState) bool {
	v, _ := call[bool](r, MethodCASNodeState, casNodeReq{ID: id, From: from, To: to})
	return v
}

// GetNode implements API.
func (r *Remote) GetNode(id types.NodeID) (types.NodeInfo, bool) {
	v, ok := call[maybeNode](r, MethodGetNode, id)
	return v.Info, ok && v.OK
}

// Nodes implements API.
func (r *Remote) Nodes() []types.NodeInfo {
	v, _ := call[[]types.NodeInfo](r, MethodNodes, nil)
	return v
}

// RegisterFunction implements API.
func (r *Remote) RegisterFunction(info FunctionInfo) {
	call[bool](r, MethodRegisterFunction, info)
}

// HasFunction implements API.
func (r *Remote) HasFunction(name string) bool {
	v, _ := call[bool](r, MethodHasFunction, name)
	return v
}

// Functions implements API.
func (r *Remote) Functions() []FunctionInfo {
	v, _ := call[[]FunctionInfo](r, MethodFunctions, nil)
	return v
}

// LogEvent implements API.
func (r *Remote) LogEvent(ev types.Event) {
	call[bool](r, MethodLogEvent, ev)
}

// Events implements API.
func (r *Remote) Events() []types.Event {
	v, _ := call[[]types.Event](r, MethodEvents, nil)
	return v
}

// PublishTelemetry implements TelemetrySink.
func (r *Remote) PublishTelemetry(id types.NodeID, snap metrics.Snapshot, spans []metrics.SpanRecord) {
	call[bool](r, MethodPublishTelemetry, publishTelemetryReq{ID: id, Snap: snap, Spans: spans})
}

// Telemetry implements TelemetrySink.
func (r *Remote) Telemetry() []TelemetrySnapshot {
	v, _ := call[[]TelemetrySnapshot](r, MethodTelemetry, nil)
	return v
}

// Spans implements TelemetrySink.
func (r *Remote) Spans() []metrics.SpanRecord {
	v, _ := call[[]metrics.SpanRecord](r, MethodSpans, nil)
	return v
}

// remoteSub adapts a transport stream to the Sub interface.
type remoteSub struct {
	stream transport.Stream
	ch     chan []byte
	once   sync.Once
	stop   chan struct{}
}

func newRemoteSub(stream transport.Stream) *remoteSub {
	s := &remoteSub{stream: stream, ch: make(chan []byte, 64), stop: make(chan struct{})}
	go s.pump()
	return s
}

func (s *remoteSub) pump() {
	defer close(s.ch)
	for {
		msg, err := s.stream.Recv()
		if err != nil {
			return // io.EOF or transport failure: subscription over
		}
		select {
		case s.ch <- msg:
		case <-s.stop:
			return
		}
	}
}

// C implements Sub.
func (s *remoteSub) C() <-chan []byte { return s.ch }

// Close implements Sub.
func (s *remoteSub) Close() {
	s.once.Do(func() {
		close(s.stop)
		s.stream.Close()
	})
}

var _ = io.EOF // documents pump's termination condition

func (r *Remote) subscribe(method string, payload []byte) Sub {
	stream, err := r.client.OpenStream(method, payload)
	if err != nil {
		// A dead control plane yields an immediately-closed subscription;
		// callers' poll fallbacks take over.
		ch := make(chan []byte)
		close(ch)
		return closedSub{ch: ch}
	}
	// Wait for the service's subscription-established ack so that no
	// publish after this call returns can be missed (see RegisterService).
	if _, err := stream.Recv(); err != nil {
		stream.Close()
		ch := make(chan []byte)
		close(ch)
		return closedSub{ch: ch}
	}
	return newRemoteSub(stream)
}

type closedSub struct{ ch chan []byte }

func (c closedSub) C() <-chan []byte { return c.ch }
func (c closedSub) Close()           {}

// SubscribeTaskStatus implements API.
func (r *Remote) SubscribeTaskStatus(id types.TaskID) Sub {
	return r.subscribe(StreamTaskStatus, []byte(id.Hex()))
}

// SubscribeObjectReady implements API.
func (r *Remote) SubscribeObjectReady(id types.ObjectID) Sub {
	return r.subscribe(StreamObjReady, []byte(id.Hex()))
}

// SubscribeSpill implements API.
func (r *Remote) SubscribeSpill() Sub { return r.subscribe(StreamSpill, nil) }

// SubscribeNodeEvents implements API.
func (r *Remote) SubscribeNodeEvents() Sub { return r.subscribe(StreamNodes, nil) }

// SubscribeObjectGC implements API.
func (r *Remote) SubscribeObjectGC() Sub { return r.subscribe(StreamObjGC, nil) }

// SubscribePlacementGroups implements API.
func (r *Remote) SubscribePlacementGroups() Sub { return r.subscribe(StreamGroups, nil) }

// SubscribeJobs implements API.
func (r *Remote) SubscribeJobs() Sub { return r.subscribe(StreamJobs, nil) }

var _ API = (*Remote)(nil)
