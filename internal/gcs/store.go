package gcs

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/kv"
	"repro/internal/types"
)

// Store is the kv-backed control plane. It is the only stateful component
// in the system; everything else can crash and resubscribe.
type Store struct {
	db    kv.DB
	epoch time.Time
	// eventsOn gates event logging so its overhead can be measured (E13).
	eventsOn atomic.Bool
	// telemetry holds published node metrics and data-plane spans —
	// in-memory only, never WAL'd (see telemetry.go).
	telemetry telemetry
}

// NewStore creates a control plane over a kv store with the given shard
// count. Event logging starts enabled.
func NewStore(shards int) *Store {
	return RecoverStore(kv.New(shards))
}

// RecoverStore wraps an existing kv database — a bare in-memory store, one
// reconstituted from a snapshot plus write-ahead-log replay (kv.Restore,
// kv.Replay, kv.RecoverDir), or a WAL-teeing kv.Logger — as a control
// plane. This is the database-side half of the Section 3.2.1 fault-
// tolerance story: the control state survives a control-plane crash, and
// the stateless components simply reconnect and resubscribe.
//
// The clock epoch is itself part of the durable state (keyMetaEpoch): the
// first incarnation stamps it, and every recovery re-reads it, so NowNs
// stays monotonic across incarnations and recorded timelines from before
// and after a crash remain comparable.
func RecoverStore(db kv.DB) *Store {
	s := &Store{db: db, epoch: time.Now()}
	if raw, ok := db.Get(keyMetaEpoch); ok {
		if ns, err := codec.DecodeAs[int64](raw); err == nil {
			s.epoch = time.Unix(0, ns)
		}
	} else {
		db.Put(keyMetaEpoch, codec.MustEncode(s.epoch.UnixNano()))
	}
	s.eventsOn.Store(true)
	return s
}

// DB exposes the underlying kv database for throughput benchmarks (E7) and
// snapshotting.
func (s *Store) DB() kv.DB { return s.db }

// SetEventLogging toggles the event log (used by the overhead bench, E13).
func (s *Store) SetEventLogging(on bool) { s.eventsOn.Store(on) }

// NowNs implements API.
func (s *Store) NowNs() int64 { return time.Since(s.epoch).Nanoseconds() }

// ResetAfterRecovery completes a control-plane restore: the previous
// incarnation's nodes are gone, so every node is marked dead and all object
// locations they held are dropped. Sole copies transition to LOST, making
// them eligible for lineage replay as soon as new nodes join — the recovery
// sequence Section 3.2.1 sketches.
func (s *Store) ResetAfterRecovery() {
	dead := make(map[types.NodeID]bool)
	for _, n := range s.Nodes() {
		dead[n.ID] = true
		s.MarkNodeDead(n.ID)
	}
	for _, o := range s.Objects() {
		for _, loc := range o.Locations {
			if dead[loc] {
				s.RemoveObjectLocation(o.ID, loc)
			}
		}
	}
}

// RebuildIndexes reconciles the durable marker indexes (PENDING tasks,
// GC-eligible objects) with the records they index. Record and marker are
// separate WAL writes, so a crash — or a WAL tail torn mid-append — can
// strand either side; a recovering shard service runs this once at boot
// (recovery already walks the whole state, so the full scan is free in
// complexity terms) and every later sweep can trust the markers.
func (s *Store) RebuildIndexes() {
	for _, k := range s.db.Keys(keyTask) {
		raw, ok := s.db.Get(k)
		if !ok {
			continue
		}
		st, err := codec.DecodeAs[types.TaskState](raw)
		if err != nil {
			continue
		}
		marker := keyPendIdx + st.Spec.ID.Hex()
		if st.Status == types.TaskPending {
			s.db.Put(marker, nil)
		} else if _, stale := s.db.Get(marker); stale {
			s.db.Delete(marker)
		}
	}
	for _, k := range s.db.Keys(keyObject) {
		raw, ok := s.db.Get(k)
		if !ok {
			continue
		}
		info, err := codec.DecodeAs[types.ObjectInfo](raw)
		if err != nil {
			continue
		}
		marker := keyGCIdx + info.ID.Hex()
		eligible := info.EverRetained && info.RefCount == 0 && len(info.Locations) > 0
		if eligible {
			s.db.Put(marker, nil)
		} else if _, stale := s.db.Get(marker); stale {
			s.db.Delete(marker)
		}
	}
}

// --- task table ---

// AddTask implements API: exactly-once insertion keyed by task ID.
func (s *Store) AddTask(state types.TaskState) bool {
	state.SubmittedNs = s.NowNs()
	state.LastTransitionNs = state.SubmittedNs
	ok := s.db.PutIfAbsent(keyTask+state.Spec.ID.Hex(), codec.MustEncode(state))
	if ok {
		if state.Status == types.TaskPending {
			s.db.Put(keyPendIdx+state.Spec.ID.Hex(), nil)
		}
		s.logEvent(types.Event{Kind: "submit", Task: state.Spec.ID, Node: state.Node})
	} else {
		// Duplicate insert — often a client retry after a crash suppressed
		// the original ack. The record write and the marker write are
		// separate WAL records, so a crash between them can leave a
		// durable PENDING record with no marker; heal it here so the
		// rescue sweep can see the task.
		if raw, found := s.db.Get(keyTask + state.Spec.ID.Hex()); found {
			if st, err := codec.DecodeAs[types.TaskState](raw); err == nil && st.Status == types.TaskPending {
				s.db.Put(keyPendIdx+state.Spec.ID.Hex(), nil)
			}
		}
	}
	return ok
}

// GetTask implements API.
func (s *Store) GetTask(id types.TaskID) (types.TaskState, bool) {
	raw, ok := s.db.Get(keyTask + id.Hex())
	if !ok {
		return types.TaskState{}, false
	}
	st, err := codec.DecodeAs[types.TaskState](raw)
	if err != nil {
		return types.TaskState{}, false
	}
	return st, true
}

// SetTaskStatus implements API. It stamps the transition time, stores the
// new state, publishes on the task's status channel, and logs an event.
func (s *Store) SetTaskStatus(id types.TaskID, status types.TaskStatus, node types.NodeID, worker types.WorkerID, errMsg string) {
	s.SetTaskStatusAt(id, status, node, worker, errMsg, s.NowNs())
}

// SetTaskStatusAt implements API: SetTaskStatus with a caller-captured
// transition timestamp (non-positive means "now"). The executor uses it to
// stamp Finished at the instant the task's function returned, before its
// outputs are stored — so recorded timelines preserve the happens-before
// edge from producer finish to consumer start.
func (s *Store) SetTaskStatusAt(id types.TaskID, status types.TaskStatus, node types.NodeID, worker types.WorkerID, errMsg string, atNs int64) {
	now := atNs
	if now <= 0 {
		now = s.NowNs()
	}
	wasPending := false
	committed := false
	s.db.Update(keyTask+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		st, err := codec.DecodeAs[types.TaskState](cur)
		if err != nil {
			return nil, false
		}
		if st.Status.Terminal() && status != st.Status {
			// Terminal states are left only through CASTaskStatus: a plain
			// stamp racing a terminal transition (e.g. a node's enqueue
			// QUEUED stamp landing after a FailTask claim buried the task)
			// must not resurrect the task — the claim fence relies on it.
			return nil, false
		}
		wasPending = st.Status == types.TaskPending
		committed = true
		st.Status = status
		if !node.IsNil() {
			st.Node = node
		}
		if !worker.IsNil() {
			st.Worker = worker
		}
		if errMsg != "" {
			st.Error = errMsg
		}
		st.LastTransitionNs = now
		switch status {
		case types.TaskScheduled:
			st.ScheduledNs = now
		case types.TaskRunning:
			st.StartedNs = now
		case types.TaskFinished, types.TaskFailed:
			st.FinishedNs = now
		}
		return codec.MustEncode(st), true
	})
	if committed {
		s.syncPendingIndex(id, wasPending, status)
	}
	s.db.Publish(chanTaskStatus+id.Hex(), []byte{byte(status)})
	s.logEvent(types.Event{Kind: "status:" + status.String(), Task: id, Node: node, Worker: worker, Detail: errMsg})
}

// syncPendingIndex maintains the durable PENDING marker set on status
// transitions (only when the PENDING-ness actually flips, so the common
// QUEUED→SCHEDULED→RUNNING→FINISHED ladder costs nothing extra).
func (s *Store) syncPendingIndex(id types.TaskID, wasPending bool, status types.TaskStatus) {
	isPending := status == types.TaskPending
	switch {
	case isPending && !wasPending:
		s.db.Put(keyPendIdx+id.Hex(), nil)
	case !isPending && wasPending:
		s.db.Delete(keyPendIdx + id.Hex())
	}
}

// CASTaskStatus implements API: an atomic conditional status transition.
func (s *Store) CASTaskStatus(id types.TaskID, from []types.TaskStatus, to types.TaskStatus) bool {
	return s.CASTaskStatusOp(id, from, to, 0)
}

// CASTaskStatusOp is CASTaskStatus with an idempotency token (0 = no
// dedup), mirroring ModifyObjectRefCountOp: a retried CAS whose original
// commit survived a shard crash is recognized by its token and reported
// won, so the claimant proceeds (enqueues the task) instead of treating
// its own earlier commit as a lost race.
func (s *Store) CASTaskStatusOp(id types.TaskID, from []types.TaskStatus, to types.TaskStatus, op uint64) bool {
	now := s.NowNs()
	won := false
	dupWin := false
	wasPending := false
	s.db.Update(keyTask+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		st, err := codec.DecodeAs[types.TaskState](cur)
		if err != nil {
			return nil, false
		}
		if op != 0 {
			for _, seen := range st.MutOps {
				if seen == op {
					dupWin = true // this exact CAS already applied
					return nil, false
				}
			}
		}
		eligible := false
		for _, f := range from {
			if st.Status == f {
				eligible = true
				break
			}
		}
		if !eligible {
			return nil, false
		}
		if op != 0 {
			st.MutOps = append(st.MutOps, op)
			if len(st.MutOps) > refOpHistory {
				st.MutOps = st.MutOps[len(st.MutOps)-refOpHistory:]
			}
		}
		wasPending = st.Status == types.TaskPending
		st.Status = to
		if to == types.TaskPending {
			// Back into the unowned spill queue (spill-away, owner-death
			// transfer, replay steal): no ledger holds authority until the
			// next claim. Bumping OwnerSeq keeps the sequence monotonic
			// across ownership tenures, so a previous owner's straggler
			// delta can never apply past this fence.
			st.Owner = types.NodeID{}
			st.OwnerSeq++
		}
		st.LastTransitionNs = now
		switch to {
		case types.TaskScheduled:
			st.ScheduledNs = now
		case types.TaskRunning:
			st.StartedNs = now
		case types.TaskFinished, types.TaskFailed:
			st.FinishedNs = now
		}
		won = true
		return codec.MustEncode(st), true
	})
	if won {
		s.syncPendingIndex(id, wasPending, to)
		s.db.Publish(chanTaskStatus+id.Hex(), []byte{byte(to)})
		s.logEvent(types.Event{Kind: "cas:" + to.String(), Task: id})
	}
	return won || dupWin
}

// ClaimTask implements API: the ownership-transfer CAS. A successful
// transition additionally stamps `owner` as the record's Owner and Node and
// bumps OwnerSeq; the returned sequence is the base the new owner's ledger
// deltas must exceed.
func (s *Store) ClaimTask(id types.TaskID, from []types.TaskStatus, to types.TaskStatus, owner types.NodeID) (uint64, bool) {
	return s.ClaimTaskOp(id, from, to, owner, 0)
}

// ClaimTaskOp is ClaimTask with an idempotency token (0 = no dedup): a
// claim retried across a shard crash is recognized by its token and
// reported won with the sequence its original commit stamped.
func (s *Store) ClaimTaskOp(id types.TaskID, from []types.TaskStatus, to types.TaskStatus, owner types.NodeID, op uint64) (uint64, bool) {
	now := s.NowNs()
	won := false
	dupWin := false
	wasPending := false
	var seq uint64
	s.db.Update(keyTask+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		st, err := codec.DecodeAs[types.TaskState](cur)
		if err != nil {
			return nil, false
		}
		if op != 0 {
			for _, seen := range st.MutOps {
				if seen == op {
					dupWin = true
					seq = st.OwnerSeq // the sequence the original commit stamped
					return nil, false
				}
			}
		}
		eligible := false
		for _, f := range from {
			if st.Status == f {
				eligible = true
				break
			}
		}
		if !eligible {
			return nil, false
		}
		if op != 0 {
			st.MutOps = append(st.MutOps, op)
			if len(st.MutOps) > refOpHistory {
				st.MutOps = st.MutOps[len(st.MutOps)-refOpHistory:]
			}
		}
		wasPending = st.Status == types.TaskPending
		st.Status = to
		st.Owner = owner
		st.Node = owner
		st.OwnerSeq++
		seq = st.OwnerSeq
		st.LastTransitionNs = now
		switch to {
		case types.TaskScheduled:
			st.ScheduledNs = now
		case types.TaskRunning:
			st.StartedNs = now
		case types.TaskFinished, types.TaskFailed:
			st.FinishedNs = now
		}
		won = true
		return codec.MustEncode(st), true
	})
	if won {
		s.syncPendingIndex(id, wasPending, to)
		s.db.Publish(chanTaskStatus+id.Hex(), []byte{byte(to)})
		s.logEvent(types.Event{Kind: "claim:" + to.String(), Task: id, Node: owner})
	}
	return seq, won || dupWin
}

// RecordTaskRetry implements API; returns the new retry count.
func (s *Store) RecordTaskRetry(id types.TaskID) int {
	return s.RecordTaskRetryOp(id, 0)
}

// RecordTaskRetryOp is RecordTaskRetry with an idempotency token (0 = no
// dedup): a redelivered increment — retry of a call whose commit survived
// a shard crash — must not burn an extra attempt from the task's retry
// budget.
func (s *Store) RecordTaskRetryOp(id types.TaskID, op uint64) int {
	retries := 0
	s.db.Update(keyTask+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		st, err := codec.DecodeAs[types.TaskState](cur)
		if err != nil {
			return nil, false
		}
		if op != 0 {
			for _, seen := range st.MutOps {
				if seen == op {
					retries = st.Retries // duplicate delivery: no re-apply
					return nil, false
				}
			}
			st.MutOps = append(st.MutOps, op)
			if len(st.MutOps) > refOpHistory {
				st.MutOps = st.MutOps[len(st.MutOps)-refOpHistory:]
			}
		}
		st.Retries++
		retries = st.Retries
		return codec.MustEncode(st), true
	})
	return retries
}

// ModifyTaskStates implements API: one owner's task-ledger flush. Each
// delta is the owner's full latest view of a task's mutable state, applied
// under the batch's idempotency token; per-record owner/seq guards consume
// (rather than fail) deltas whose authority has moved on. The in-process
// store is always fully reachable, so this never reports failures.
func (s *Store) ModifyTaskStates(node types.NodeID, deltas []types.TaskStateDelta, op uint64) []types.TaskID {
	for _, d := range deltas {
		s.applyTaskDelta(d, op)
	}
	return nil
}

// applyTaskDelta applies one ledger delta to the follower record. Mirrors
// applyLedgerDelta's crash discipline: a redelivered token skips the state
// write but redoes the crash-droppable side effects (pending-index heal and
// the status publish), since the original commit may have died before them.
func (s *Store) applyTaskDelta(d types.TaskStateDelta, op uint64) {
	applied := false
	dup := false
	wasPending := false
	status := d.Status
	s.db.Update(keyTask+d.ID.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false // no AddTask record: nothing to follow
		}
		st, err := codec.DecodeAs[types.TaskState](cur)
		if err != nil {
			return nil, false
		}
		if op != 0 {
			for _, seen := range st.MutOps {
				if seen == op {
					dup = true
					status = st.Status
					return nil, false
				}
			}
		}
		if st.Owner != d.Owner || d.Seq <= st.OwnerSeq {
			// Authority moved on (spill-away, owner-death transfer, a newer
			// claim) or this is an out-of-order straggler: the delta is
			// consumed, never failed — the sender's ledger no longer speaks
			// for this record.
			return nil, false
		}
		if st.Status.Terminal() && d.Status != st.Status {
			// A terminal bury (FailTask) wins over a late owner flush, the
			// same fence SetTaskStatusAt enforces for plain stamps.
			return nil, false
		}
		if op != 0 {
			st.MutOps = append(st.MutOps, op)
			if len(st.MutOps) > refOpHistory {
				st.MutOps = st.MutOps[len(st.MutOps)-refOpHistory:]
			}
		}
		wasPending = st.Status == types.TaskPending
		st.Status = d.Status
		st.OwnerSeq = d.Seq
		if !d.Node.IsNil() {
			st.Node = d.Node
		}
		if !d.Worker.IsNil() {
			st.Worker = d.Worker
		}
		if d.Error != "" {
			st.Error = d.Error
		}
		if d.Retries > st.Retries {
			st.Retries = d.Retries
		}
		// The owner stamps transition times on its cluster clock; take them
		// as given so profiling timelines reflect when transitions actually
		// happened, not when the flush landed.
		if d.ScheduledNs > 0 {
			st.ScheduledNs = d.ScheduledNs
		}
		if d.StartedNs > 0 {
			st.StartedNs = d.StartedNs
		}
		if d.FinishedNs > 0 {
			st.FinishedNs = d.FinishedNs
		}
		if d.LastTransitionNs > 0 {
			st.LastTransitionNs = d.LastTransitionNs
		}
		applied = true
		return codec.MustEncode(st), true
	})
	if applied {
		s.syncPendingIndex(d.ID, wasPending, d.Status)
		s.db.Publish(chanTaskStatus+d.ID.Hex(), []byte{byte(d.Status)})
		s.logEvent(types.Event{Kind: "status:" + d.Status.String(), Task: d.ID, Node: d.Node, Worker: d.Worker, Detail: d.Error})
	} else if dup {
		// Redelivery after a crash between commit and side effects: heal the
		// index and refire the (ephemeral) status publish.
		if raw, ok := s.db.Get(keyTask + d.ID.Hex()); ok {
			if st, err := codec.DecodeAs[types.TaskState](raw); err == nil {
				s.syncPendingIndex(d.ID, st.Status != types.TaskPending, st.Status)
			}
		}
		s.db.Publish(chanTaskStatus+d.ID.Hex(), []byte{byte(status)})
	}
}

// LiveTasksOwnedBy implements API: the owner-death transfer's source of
// truth. Scans the follower table for non-terminal records whose ledger
// authority is `owner`; the in-process store always has a complete view.
func (s *Store) LiveTasksOwnedBy(owner types.NodeID) ([]types.TaskState, bool) {
	var out []types.TaskState
	for _, k := range s.db.Keys(keyTask) {
		raw, ok := s.db.Get(k)
		if !ok {
			continue
		}
		st, err := codec.DecodeAs[types.TaskState](raw)
		if err != nil {
			continue
		}
		if st.Owner == owner && !st.Status.Terminal() {
			out = append(out, st)
		}
	}
	return out, true
}

// Tasks implements API (inspection scan, R7).
func (s *Store) Tasks() []types.TaskState {
	keys := s.db.Keys(keyTask)
	out := make([]types.TaskState, 0, len(keys))
	for _, k := range keys {
		if raw, ok := s.db.Get(k); ok {
			if st, err := codec.DecodeAs[types.TaskState](raw); err == nil {
				out = append(out, st)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SubmittedNs < out[j].SubmittedNs })
	return out
}

// SubscribeTaskStatus implements API.
func (s *Store) SubscribeTaskStatus(id types.TaskID) Sub {
	return s.db.Subscribe(chanTaskStatus + id.Hex())
}

// StalePendingTasks implements API: the server-side filter behind the
// global scheduler's rescue sweep. It walks the durable PENDING marker
// index — O(currently-pending), not O(task history) — and measures
// staleness from the latest recorded transition on this store's own
// clock, so the sweep never pays for (or trips over) cross-client clock
// skew, and only the handful of stale specs crosses the wire. Markers
// whose task is no longer PENDING (possible only if a crash split the
// record write from the marker write) are healed lazily.
func (s *Store) StalePendingTasks(olderThanNs int64) []types.TaskSpec {
	now := s.NowNs()
	var out []types.TaskSpec
	for _, k := range s.db.Keys(keyPendIdx) {
		hex := k[len(keyPendIdx):]
		raw, ok := s.db.Get(keyTask + hex)
		if !ok {
			s.db.Delete(k)
			continue
		}
		st, err := codec.DecodeAs[types.TaskState](raw)
		if err != nil {
			continue
		}
		if st.Status != types.TaskPending {
			s.db.Delete(k) // stale marker: heal the index
			continue
		}
		last := st.SubmittedNs
		if st.LastTransitionNs > last {
			last = st.LastTransitionNs
		}
		if last == 0 || now-last < olderThanNs {
			continue
		}
		out = append(out, st.Spec)
	}
	return out
}

// --- object table ---

// EnsureObject implements API. Since lineage edges flush asynchronously
// from the owner's task ledger (DESIGN.md §13), an executing node's
// AddObjectLocation can now create the record before the producer edge
// arrives — so a late ensure heals a missing Producer instead of being a
// pure put-if-absent, keeping the object reconstructable.
func (s *Store) EnsureObject(id types.ObjectID, producer types.TaskID) {
	s.db.Update(keyObject+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			info := types.ObjectInfo{ID: id, Producer: producer, State: types.ObjectPending}
			return codec.MustEncode(info), true
		}
		info, err := codec.DecodeAs[types.ObjectInfo](cur)
		if err != nil || !info.Producer.IsNil() || producer.IsNil() {
			return nil, false
		}
		info.Producer = producer
		return codec.MustEncode(info), true
	})
}

// EnsureObjects implements API: the task ledger's batched lineage flush.
// The in-process store is always fully reachable, so this never reports
// failures.
func (s *Store) EnsureObjects(producers map[types.ObjectID]types.TaskID) []types.ObjectID {
	for id, producer := range producers {
		s.EnsureObject(id, producer)
	}
	return nil
}

// AddObjectLocation implements API. The first location moves the object to
// Ready and fires its ready channel, which is what unblocks dataflow
// dispatch in every local scheduler waiting on it.
func (s *Store) AddObjectLocation(id types.ObjectID, node types.NodeID, size int64) {
	garbage := false
	s.db.Update(keyObject+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		var info types.ObjectInfo
		if exists {
			var err error
			info, err = codec.DecodeAs[types.ObjectInfo](cur)
			if err != nil {
				return nil, false
			}
		} else {
			info = types.ObjectInfo{ID: id}
		}
		if !info.HasLocation(node) {
			info.Locations = append(info.Locations, node)
		}
		info.Size = size
		info.State = types.ObjectReady
		garbage = info.EverRetained && info.RefCount == 0
		return codec.MustEncode(info), true
	})
	s.db.Publish(chanObjReady+id.Hex(), id[:])
	if garbage {
		// The object's references came and went before its bytes arrived —
		// possible since batched ledger flushes can deliver a retain+release
		// "touch" while the producer is still running. Nobody else will ever
		// publish this object on the GC channel, so the produce does, or the
		// copy would be stranded forever.
		s.db.Put(keyGCIdx+id.Hex(), nil)
		s.db.Publish(chanObjGC, id[:])
	}
	s.logEvent(types.Event{Kind: "object-ready", Object: id, Node: node})
}

// RemoveObjectLocation implements API. Dropping the last live copy of a
// ready object marks it Lost — the trigger for lineage reconstruction (R6).
func (s *Store) RemoveObjectLocation(id types.ObjectID, node types.NodeID) {
	lost := false
	drained := false
	s.db.Update(keyObject+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		info, err := codec.DecodeAs[types.ObjectInfo](cur)
		if err != nil {
			return nil, false
		}
		locs := info.Locations[:0]
		for _, n := range info.Locations {
			if n != node {
				locs = append(locs, n)
			}
		}
		info.Locations = locs
		if info.IsSpilledOn(node) {
			disk := info.SpilledOn[:0]
			for _, n := range info.SpilledOn {
				if n != node {
					disk = append(disk, n)
				}
			}
			info.SpilledOn = disk
		}
		if len(locs) == 0 && info.State == types.ObjectReady {
			info.State = types.ObjectLost
			lost = true
		}
		drained = len(locs) == 0 && info.RefCount == 0 && info.EverRetained
		return codec.MustEncode(info), true
	})
	if drained {
		// Every copy is gone and nobody holds a reference: collection is
		// complete, so the GC-eligible marker (and its replay) retires.
		s.db.Delete(keyGCIdx + id.Hex())
	}
	if lost {
		s.logEvent(types.Event{Kind: "object-lost", Object: id, Node: node})
	}
}

// ModifyObjectRefCount implements API. The count never goes below zero (a
// raced double-release clamps), and only a positive-to-zero transition
// publishes on the GC channel — objects nobody ever retained stay at zero
// without ever becoming GC-eligible, preserving pre-lifetime behaviour.
func (s *Store) ModifyObjectRefCount(id types.ObjectID, delta int64) int64 {
	return s.ModifyObjectRefCountOp(id, delta, 0)
}

// refOpHistory bounds ObjectInfo.RefOps. A retry's token must survive in
// the ring for the full retry window (seconds) even while other clients'
// queued deltas land on the same hot object after a shard restart — e.g.
// a widely-shared dependency borrowed by dozens of queued tasks — so the
// ring is sized well past any realistic burst of concurrent mutators
// (512 B worst case per high-churn record).
const refOpHistory = 64

// ModifyObjectRefCountOp is ModifyObjectRefCount with an idempotency
// token. A non-zero op already present in the record's RefOps ring means
// this exact mutation was applied and its response lost (typically to a
// shard crash between commit and reply); the retry returns the current
// count without re-applying the delta. op 0 disables dedup (in-process
// and non-retrying callers).
func (s *Store) ModifyObjectRefCountOp(id types.ObjectID, delta int64, op uint64) int64 {
	var after int64
	gc := false
	wasEligible := false
	s.db.Update(keyObject+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		var info types.ObjectInfo
		if exists {
			var err error
			info, err = codec.DecodeAs[types.ObjectInfo](cur)
			if err != nil {
				return nil, false
			}
		} else {
			info = types.ObjectInfo{ID: id}
		}
		if op != 0 {
			for _, seen := range info.RefOps {
				if seen == op {
					after = info.RefCount // duplicate delivery: no re-apply
					// The original commit may have died before its marker
					// write and GC publish; redo those side effects if the
					// record is still eligible AND undrained (a drained
					// object's marker already retired for good — don't
					// resurrect it).
					gc = info.EverRetained && info.RefCount == 0 && len(info.Locations) > 0
					return nil, false
				}
			}
			info.RefOps = append(info.RefOps, op)
			if len(info.RefOps) > refOpHistory {
				info.RefOps = info.RefOps[len(info.RefOps)-refOpHistory:]
			}
		}
		before := info.RefCount
		wasEligible = info.EverRetained && before == 0
		info.RefCount += delta
		if info.RefCount < 0 {
			info.RefCount = 0
		}
		if info.RefCount > 0 {
			info.EverRetained = true
		}
		after = info.RefCount
		gc = before > 0 && after == 0
		return codec.MustEncode(info), true
	})
	// Maintain the durable GC-eligible index on transitions only (the
	// common increment/decrement traffic above zero touches no marker).
	if gc {
		s.db.Put(keyGCIdx+id.Hex(), nil)
		s.db.Publish(chanObjGC, id[:])
		s.logEvent(types.Event{Kind: "object-gc-eligible", Object: id})
	} else if wasEligible && after > 0 {
		s.db.Delete(keyGCIdx + id.Hex()) // re-retained from zero
	}
	return after
}

// ModifyObjectRefCounts implements API: one node's ledger flush, applied
// as independent per-object mutations sharing the batch's idempotency
// token (DESIGN.md §12). The token is recorded in each object's RefOps
// ring individually, so a crash that commits part of a batch before the
// ack is lost is repaired exactly by redelivery: already-committed objects
// dedup on the token, the rest apply. A zero delta is a "touch" — the
// object was retained and fully released within one flush interval — and
// carries the retain's semantic obligations (EverRetained, and a GC
// publish if the count sits at zero) without moving the count. The
// in-process store cannot fail partially, so the failed set is always nil.
func (s *Store) ModifyObjectRefCounts(node types.NodeID, deltas map[types.ObjectID]int64, op uint64) []types.ObjectID {
	for id, delta := range deltas {
		s.applyLedgerDelta(node, id, delta, op)
	}
	return nil
}

// applyLedgerDelta is one object's share of a ledger flush: the tokened,
// holder-attributed generalization of ModifyObjectRefCountOp.
func (s *Store) applyLedgerDelta(node types.NodeID, id types.ObjectID, delta int64, op uint64) {
	gc := false
	wasEligible := false
	after := int64(0)
	s.db.Update(keyObject+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		var info types.ObjectInfo
		if exists {
			var err error
			info, err = codec.DecodeAs[types.ObjectInfo](cur)
			if err != nil {
				return nil, false
			}
		} else {
			info = types.ObjectInfo{ID: id}
		}
		if op != 0 {
			for _, seen := range info.RefOps {
				if seen == op {
					// Duplicate delivery of this batch for this object: the
					// count already moved. Redo only the crash-droppable side
					// effects (marker + GC publish), as the single-ID path does.
					gc = info.EverRetained && info.RefCount == 0 && len(info.Locations) > 0
					after = info.RefCount
					return nil, false
				}
			}
			info.RefOps = append(info.RefOps, op)
			if len(info.RefOps) > refOpHistory {
				info.RefOps = info.RefOps[len(info.RefOps)-refOpHistory:]
			}
		}
		before := info.RefCount
		wasEligible = info.EverRetained && before == 0
		info.RefCount += delta
		if info.RefCount < 0 {
			info.RefCount = 0
		}
		if delta >= 0 {
			// A positive delta means live references exist; a zero delta is a
			// touch. Either way the object has now been retained at least once.
			info.EverRetained = true
		}
		if !node.IsNil() && delta != 0 {
			h := int64(0)
			if info.Holders != nil {
				h = info.Holders[node]
			}
			h += delta
			switch {
			case h > 0:
				if info.Holders == nil {
					info.Holders = make(map[types.NodeID]int64, 1)
				}
				info.Holders[node] = h
			case info.Holders != nil:
				delete(info.Holders, node)
			}
		}
		after = info.RefCount
		gc = !wasEligible && info.EverRetained && after == 0
		return codec.MustEncode(info), true
	})
	if gc {
		s.db.Put(keyGCIdx+id.Hex(), nil)
		s.db.Publish(chanObjGC, id[:])
		s.logEvent(types.Event{Kind: "object-gc-eligible", Object: id})
	} else if wasEligible && after > 0 {
		s.db.Delete(keyGCIdx + id.Hex()) // re-retained from zero
	}
}

// SweepDeadNodeRefs implements API: drop every refcount share attributed
// to node, which died without flushing releases (DESIGN.md §12). Counts a
// dead node's ledger would eventually have released are subtracted in one
// pass; objects thereby reaching zero become GC-eligible exactly as if the
// releases had flushed. The sweep is idempotent — a node's attribution is
// deleted as it is swept, so concurrent or repeated sweeps (every global
// scheduler runs one per death it observes) find nothing the second time.
// Reports how many objects were adjusted.
func (s *Store) SweepDeadNodeRefs(node types.NodeID) int {
	if node.IsNil() {
		return 0
	}
	swept := 0
	for _, k := range s.db.Keys(keyObject) {
		id, err := types.ParseObjectID(k[len(keyObject):])
		if err != nil {
			continue
		}
		gc := false
		adjusted := false
		s.db.Update(k, func(cur []byte, exists bool) ([]byte, bool) {
			if !exists {
				return nil, false
			}
			info, err := codec.DecodeAs[types.ObjectInfo](cur)
			if err != nil {
				return nil, false
			}
			held := info.Holders[node]
			if held <= 0 {
				return nil, false
			}
			delete(info.Holders, node)
			before := info.RefCount
			info.RefCount -= held
			if info.RefCount < 0 {
				info.RefCount = 0
			}
			adjusted = true
			gc = before > 0 && info.RefCount == 0
			return codec.MustEncode(info), true
		})
		if adjusted {
			swept++
		}
		if gc {
			s.db.Put(keyGCIdx+id.Hex(), nil)
			s.db.Publish(chanObjGC, id[:])
			s.logEvent(types.Event{Kind: "owner-death-sweep", Object: id, Node: node})
		}
	}
	return swept
}

// MarkObjectSpilled implements API. The spilled bit qualifies a registered
// location: object stores publish spill/restore transitions asynchronously
// (outside their data-plane lock), so a mark can arrive after the location
// it describes was already removed — dropping it here keeps a raced delete
// from resurrecting a phantom disk copy.
func (s *Store) MarkObjectSpilled(id types.ObjectID, node types.NodeID, spilled bool) {
	s.db.Update(keyObject+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		info, err := codec.DecodeAs[types.ObjectInfo](cur)
		if err != nil {
			return nil, false
		}
		if spilled && !info.HasLocation(node) {
			return nil, false // location already removed; stale async mark
		}
		onDisk := info.IsSpilledOn(node)
		switch {
		case spilled && !onDisk:
			info.SpilledOn = append(info.SpilledOn, node)
		case !spilled && onDisk:
			kept := info.SpilledOn[:0]
			for _, n := range info.SpilledOn {
				if n != node {
					kept = append(kept, n)
				}
			}
			info.SpilledOn = kept
		default:
			return nil, false // no change; skip the write
		}
		return codec.MustEncode(info), true
	})
}

// SubscribeObjectGC implements API.
func (s *Store) SubscribeObjectGC() Sub { return s.db.Subscribe(chanObjGC) }

// GCEligibleObjects returns objects whose refcount fell to zero after
// having been retained and whose copies are not yet fully drained —
// exactly the set whose GC publish a subscriber may have missed. A
// recovered shard service replays these to every GC-channel subscriber at
// (re)subscribe time, so a notification dropped by a crash only delays
// reclamation until the next subscription instead of leaking the object
// forever. The walk is over the durable marker index (retired when the
// last copy drains), so replay cost tracks outstanding garbage, not the
// cluster's full object history; reclaim is idempotent, so the inherent
// duplicates are harmless. Markers out of sync with their record (a crash
// between the two writes) are healed lazily.
func (s *Store) GCEligibleObjects() []types.ObjectID {
	var out []types.ObjectID
	for _, k := range s.db.Keys(keyGCIdx) {
		hex := k[len(keyGCIdx):]
		id, err := types.ParseObjectID(hex)
		if err != nil {
			s.db.Delete(k)
			continue
		}
		info, ok := s.GetObject(id)
		if !ok || !info.EverRetained || info.RefCount > 0 || len(info.Locations) == 0 {
			s.db.Delete(k) // stale or drained marker: heal the index
			continue
		}
		out = append(out, id)
	}
	return out
}

// Ping implements Pinger: the in-process store is always reachable.
func (s *Store) Ping() bool { return true }

// GetObject implements API.
func (s *Store) GetObject(id types.ObjectID) (types.ObjectInfo, bool) {
	raw, ok := s.db.Get(keyObject + id.Hex())
	if !ok {
		return types.ObjectInfo{}, false
	}
	info, err := codec.DecodeAs[types.ObjectInfo](raw)
	if err != nil {
		return types.ObjectInfo{}, false
	}
	return info, true
}

// Objects implements API (inspection scan, R7).
func (s *Store) Objects() []types.ObjectInfo {
	keys := s.db.Keys(keyObject)
	out := make([]types.ObjectInfo, 0, len(keys))
	for _, k := range keys {
		if raw, ok := s.db.Get(k); ok {
			if info, err := codec.DecodeAs[types.ObjectInfo](raw); err == nil {
				out = append(out, info)
			}
		}
	}
	return out
}

// SubscribeObjectReady implements API.
func (s *Store) SubscribeObjectReady(id types.ObjectID) Sub {
	return s.db.Subscribe(chanObjReady + id.Hex())
}

// --- spillover ---

// PublishSpill implements API.
func (s *Store) PublishSpill(spec types.TaskSpec) {
	s.db.Publish(chanSpill, codec.MustEncode(spec))
	s.logEvent(types.Event{Kind: "spill", Task: spec.ID})
}

// SubscribeSpill implements API.
func (s *Store) SubscribeSpill() Sub { return s.db.Subscribe(chanSpill) }

// --- node table ---

// RegisterNode implements API.
func (s *Store) RegisterNode(info types.NodeInfo) {
	info.Alive = true
	info.LastSeen = s.NowNs()
	s.db.Put(keyNode+info.ID.Hex(), codec.MustEncode(info))
	s.db.Publish(chanNodes, codec.MustEncode(info))
	s.logEvent(types.Event{Kind: "node-join", Node: info.ID})
}

// unloggedUpdater is optionally implemented by the kv layer (kv.Logger)
// to apply an update without writing it to the WAL. Heartbeats use it:
// liveness stamps are the highest-churn mutation in the system and purely
// ephemeral — a recovered shard repopulates them from the next heartbeat
// within one interval — so logging them would grow the WAL without bound
// for zero recovery value.
type unloggedUpdater interface {
	UpdateUnlogged(key string, fn func(cur []byte, exists bool) ([]byte, bool)) bool
}

// Heartbeat implements API. Load snapshots feed the global scheduler's
// placement policy. The stamp bypasses the WAL (see unloggedUpdater).
func (s *Store) Heartbeat(id types.NodeID, queueLen int, avail types.Resources, store types.StoreStats) {
	now := s.NowNs()
	update := s.db.Update
	if u, ok := s.db.(unloggedUpdater); ok {
		update = u.UpdateUnlogged
	}
	update(keyNode+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		info, err := codec.DecodeAs[types.NodeInfo](cur)
		if err != nil {
			return nil, false
		}
		info.LastSeen = now
		info.QueueLen = queueLen
		info.Available = avail
		info.Store = store
		info.Alive = true
		return codec.MustEncode(info), true
	})
}

// MarkNodeDead implements API.
func (s *Store) MarkNodeDead(id types.NodeID) {
	var dead types.NodeInfo
	found := false
	s.db.Update(keyNode+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		info, err := codec.DecodeAs[types.NodeInfo](cur)
		if err != nil {
			return nil, false
		}
		info.Alive = false
		dead, found = info, true
		return codec.MustEncode(info), true
	})
	if found {
		s.db.Publish(chanNodes, codec.MustEncode(dead))
		s.logEvent(types.Event{Kind: "node-dead", Node: id})
	}
}

// CASNodeState implements API.
func (s *Store) CASNodeState(id types.NodeID, from []types.NodeState, to types.NodeState) bool {
	return s.CASNodeStateOp(id, from, to, 0)
}

// CASNodeStateOp is CASNodeState with an idempotency token (0 = no dedup),
// mirroring CASTaskStatusOp: a drain CAS retried across a control-plane
// shard crash is recognized by its token in the record's durable MutOps
// ring and reported won, so the autoscaler (or draining node) proceeds
// instead of treating its own earlier commit as a lost race.
func (s *Store) CASNodeStateOp(id types.NodeID, from []types.NodeState, to types.NodeState, op uint64) bool {
	now := s.NowNs()
	won := false
	dupWin := false
	var next types.NodeInfo
	s.db.Update(keyNode+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		info, err := codec.DecodeAs[types.NodeInfo](cur)
		if err != nil {
			return nil, false
		}
		if op != 0 {
			for _, seen := range info.MutOps {
				if seen == op {
					dupWin = true // this exact CAS already applied
					return nil, false
				}
			}
		}
		eligible := false
		for _, f := range from {
			if info.State == f {
				eligible = true
				break
			}
		}
		if !eligible {
			return nil, false
		}
		if op != 0 {
			info.MutOps = append(info.MutOps, op)
			if len(info.MutOps) > refOpHistory {
				info.MutOps = info.MutOps[len(info.MutOps)-refOpHistory:]
			}
		}
		info.State = to
		switch to {
		case types.NodeDraining:
			info.DrainNs = now
		case types.NodeActive:
			info.DrainNs = 0 // rollback: the drain never happened
		}
		won = true
		next = info
		return codec.MustEncode(info), true
	})
	if won {
		s.db.Publish(chanNodes, codec.MustEncode(next))
		s.logEvent(types.Event{Kind: "node-state:" + to.String(), Node: id})
	}
	return won || dupWin
}

// GetNode implements API.
func (s *Store) GetNode(id types.NodeID) (types.NodeInfo, bool) {
	raw, ok := s.db.Get(keyNode + id.Hex())
	if !ok {
		return types.NodeInfo{}, false
	}
	info, err := codec.DecodeAs[types.NodeInfo](raw)
	if err != nil {
		return types.NodeInfo{}, false
	}
	return info, true
}

// Nodes implements API.
func (s *Store) Nodes() []types.NodeInfo {
	keys := s.db.Keys(keyNode)
	out := make([]types.NodeInfo, 0, len(keys))
	for _, k := range keys {
		if raw, ok := s.db.Get(k); ok {
			if info, err := codec.DecodeAs[types.NodeInfo](raw); err == nil {
				out = append(out, info)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Hex() < out[j].ID.Hex() })
	return out
}

// SubscribeNodeEvents implements API.
func (s *Store) SubscribeNodeEvents() Sub { return s.db.Subscribe(chanNodes) }

// --- function table ---

// RegisterFunction implements API.
func (s *Store) RegisterFunction(info FunctionInfo) {
	s.db.Put(keyFunc+info.Name, codec.MustEncode(info))
}

// HasFunction implements API.
func (s *Store) HasFunction(name string) bool {
	_, ok := s.db.Get(keyFunc + name)
	return ok
}

// Functions implements API.
func (s *Store) Functions() []FunctionInfo {
	keys := s.db.Keys(keyFunc)
	out := make([]FunctionInfo, 0, len(keys))
	for _, k := range keys {
		if raw, ok := s.db.Get(k); ok {
			if info, err := codec.DecodeAs[FunctionInfo](raw); err == nil {
				out = append(out, info)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// --- event log ---

func (s *Store) logEvent(ev types.Event) {
	if !s.eventsOn.Load() {
		return
	}
	ev.TimeNs = s.NowNs()
	s.db.Append(keyEvents+ev.Node.Hex(), codec.MustEncode(ev))
}

// LogEvent implements API (for components logging their own events).
func (s *Store) LogEvent(ev types.Event) { s.logEvent(ev) }

// Events implements API: the merged, time-ordered event log.
func (s *Store) Events() []types.Event {
	var out []types.Event
	for _, k := range s.db.ListKeys(keyEvents) {
		for _, raw := range s.db.List(k) {
			if ev, err := codec.DecodeAs[types.Event](raw); err == nil {
				out = append(out, ev)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TimeNs < out[j].TimeNs })
	return out
}

var _ API = (*Store)(nil)
