package gcs

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/kv"
	"repro/internal/types"
)

// Store is the kv-backed control plane. It is the only stateful component
// in the system; everything else can crash and resubscribe.
type Store struct {
	db    *kv.Store
	epoch time.Time
	// eventsOn gates event logging so its overhead can be measured (E13).
	eventsOn atomic.Bool
}

// NewStore creates a control plane over a kv store with the given shard
// count. Event logging starts enabled.
func NewStore(shards int) *Store {
	return RecoverStore(kv.New(shards))
}

// RecoverStore wraps an existing kv database — typically one reconstituted
// from a snapshot plus write-ahead-log replay (kv.Restore, kv.Replay) — as
// a control plane. This is the database-side half of the Section 3.2.1
// fault-tolerance story: the control state survives a control-plane crash,
// and the stateless components simply reconnect and resubscribe. The clock
// epoch restarts, so timestamps are only comparable within one incarnation.
func RecoverStore(db *kv.Store) *Store {
	s := &Store{db: db, epoch: time.Now()}
	s.eventsOn.Store(true)
	return s
}

// DB exposes the underlying kv store for throughput benchmarks (E7).
func (s *Store) DB() *kv.Store { return s.db }

// SetEventLogging toggles the event log (used by the overhead bench, E13).
func (s *Store) SetEventLogging(on bool) { s.eventsOn.Store(on) }

// NowNs implements API.
func (s *Store) NowNs() int64 { return time.Since(s.epoch).Nanoseconds() }

// ResetAfterRecovery completes a control-plane restore: the previous
// incarnation's nodes are gone, so every node is marked dead and all object
// locations they held are dropped. Sole copies transition to LOST, making
// them eligible for lineage replay as soon as new nodes join — the recovery
// sequence Section 3.2.1 sketches.
func (s *Store) ResetAfterRecovery() {
	dead := make(map[types.NodeID]bool)
	for _, n := range s.Nodes() {
		dead[n.ID] = true
		s.MarkNodeDead(n.ID)
	}
	for _, o := range s.Objects() {
		for _, loc := range o.Locations {
			if dead[loc] {
				s.RemoveObjectLocation(o.ID, loc)
			}
		}
	}
}

// --- task table ---

// AddTask implements API: exactly-once insertion keyed by task ID.
func (s *Store) AddTask(state types.TaskState) bool {
	state.SubmittedNs = s.NowNs()
	ok := s.db.PutIfAbsent(keyTask+state.Spec.ID.Hex(), codec.MustEncode(state))
	if ok {
		s.logEvent(types.Event{Kind: "submit", Task: state.Spec.ID, Node: state.Node})
	}
	return ok
}

// GetTask implements API.
func (s *Store) GetTask(id types.TaskID) (types.TaskState, bool) {
	raw, ok := s.db.Get(keyTask + id.Hex())
	if !ok {
		return types.TaskState{}, false
	}
	st, err := codec.DecodeAs[types.TaskState](raw)
	if err != nil {
		return types.TaskState{}, false
	}
	return st, true
}

// SetTaskStatus implements API. It stamps the transition time, stores the
// new state, publishes on the task's status channel, and logs an event.
func (s *Store) SetTaskStatus(id types.TaskID, status types.TaskStatus, node types.NodeID, worker types.WorkerID, errMsg string) {
	s.SetTaskStatusAt(id, status, node, worker, errMsg, s.NowNs())
}

// SetTaskStatusAt implements API: SetTaskStatus with a caller-captured
// transition timestamp (non-positive means "now"). The executor uses it to
// stamp Finished at the instant the task's function returned, before its
// outputs are stored — so recorded timelines preserve the happens-before
// edge from producer finish to consumer start.
func (s *Store) SetTaskStatusAt(id types.TaskID, status types.TaskStatus, node types.NodeID, worker types.WorkerID, errMsg string, atNs int64) {
	now := atNs
	if now <= 0 {
		now = s.NowNs()
	}
	s.db.Update(keyTask+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		st, err := codec.DecodeAs[types.TaskState](cur)
		if err != nil {
			return nil, false
		}
		st.Status = status
		if !node.IsNil() {
			st.Node = node
		}
		if !worker.IsNil() {
			st.Worker = worker
		}
		if errMsg != "" {
			st.Error = errMsg
		}
		switch status {
		case types.TaskScheduled:
			st.ScheduledNs = now
		case types.TaskRunning:
			st.StartedNs = now
		case types.TaskFinished, types.TaskFailed:
			st.FinishedNs = now
		}
		return codec.MustEncode(st), true
	})
	s.db.Publish(chanTaskStatus+id.Hex(), []byte{byte(status)})
	s.logEvent(types.Event{Kind: "status:" + status.String(), Task: id, Node: node, Worker: worker, Detail: errMsg})
}

// CASTaskStatus implements API: an atomic conditional status transition.
func (s *Store) CASTaskStatus(id types.TaskID, from []types.TaskStatus, to types.TaskStatus) bool {
	now := s.NowNs()
	won := false
	s.db.Update(keyTask+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		st, err := codec.DecodeAs[types.TaskState](cur)
		if err != nil {
			return nil, false
		}
		eligible := false
		for _, f := range from {
			if st.Status == f {
				eligible = true
				break
			}
		}
		if !eligible {
			return nil, false
		}
		st.Status = to
		switch to {
		case types.TaskScheduled:
			st.ScheduledNs = now
		case types.TaskRunning:
			st.StartedNs = now
		case types.TaskFinished, types.TaskFailed:
			st.FinishedNs = now
		}
		won = true
		return codec.MustEncode(st), true
	})
	if won {
		s.db.Publish(chanTaskStatus+id.Hex(), []byte{byte(to)})
		s.logEvent(types.Event{Kind: "cas:" + to.String(), Task: id})
	}
	return won
}

// RecordTaskRetry implements API; returns the new retry count.
func (s *Store) RecordTaskRetry(id types.TaskID) int {
	retries := 0
	s.db.Update(keyTask+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		st, err := codec.DecodeAs[types.TaskState](cur)
		if err != nil {
			return nil, false
		}
		st.Retries++
		retries = st.Retries
		return codec.MustEncode(st), true
	})
	return retries
}

// Tasks implements API (inspection scan, R7).
func (s *Store) Tasks() []types.TaskState {
	keys := s.db.Keys(keyTask)
	out := make([]types.TaskState, 0, len(keys))
	for _, k := range keys {
		if raw, ok := s.db.Get(k); ok {
			if st, err := codec.DecodeAs[types.TaskState](raw); err == nil {
				out = append(out, st)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SubmittedNs < out[j].SubmittedNs })
	return out
}

// SubscribeTaskStatus implements API.
func (s *Store) SubscribeTaskStatus(id types.TaskID) Sub {
	return s.db.Subscribe(chanTaskStatus + id.Hex())
}

// --- object table ---

// EnsureObject implements API.
func (s *Store) EnsureObject(id types.ObjectID, producer types.TaskID) {
	info := types.ObjectInfo{ID: id, Producer: producer, State: types.ObjectPending}
	s.db.PutIfAbsent(keyObject+id.Hex(), codec.MustEncode(info))
}

// AddObjectLocation implements API. The first location moves the object to
// Ready and fires its ready channel, which is what unblocks dataflow
// dispatch in every local scheduler waiting on it.
func (s *Store) AddObjectLocation(id types.ObjectID, node types.NodeID, size int64) {
	s.db.Update(keyObject+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		var info types.ObjectInfo
		if exists {
			var err error
			info, err = codec.DecodeAs[types.ObjectInfo](cur)
			if err != nil {
				return nil, false
			}
		} else {
			info = types.ObjectInfo{ID: id}
		}
		if !info.HasLocation(node) {
			info.Locations = append(info.Locations, node)
		}
		info.Size = size
		info.State = types.ObjectReady
		return codec.MustEncode(info), true
	})
	s.db.Publish(chanObjReady+id.Hex(), id[:])
	s.logEvent(types.Event{Kind: "object-ready", Object: id, Node: node})
}

// RemoveObjectLocation implements API. Dropping the last live copy of a
// ready object marks it Lost — the trigger for lineage reconstruction (R6).
func (s *Store) RemoveObjectLocation(id types.ObjectID, node types.NodeID) {
	lost := false
	s.db.Update(keyObject+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		info, err := codec.DecodeAs[types.ObjectInfo](cur)
		if err != nil {
			return nil, false
		}
		locs := info.Locations[:0]
		for _, n := range info.Locations {
			if n != node {
				locs = append(locs, n)
			}
		}
		info.Locations = locs
		if info.IsSpilledOn(node) {
			disk := info.SpilledOn[:0]
			for _, n := range info.SpilledOn {
				if n != node {
					disk = append(disk, n)
				}
			}
			info.SpilledOn = disk
		}
		if len(locs) == 0 && info.State == types.ObjectReady {
			info.State = types.ObjectLost
			lost = true
		}
		return codec.MustEncode(info), true
	})
	if lost {
		s.logEvent(types.Event{Kind: "object-lost", Object: id, Node: node})
	}
}

// ModifyObjectRefCount implements API. The count never goes below zero (a
// raced double-release clamps), and only a positive-to-zero transition
// publishes on the GC channel — objects nobody ever retained stay at zero
// without ever becoming GC-eligible, preserving pre-lifetime behaviour.
func (s *Store) ModifyObjectRefCount(id types.ObjectID, delta int64) int64 {
	var after int64
	gc := false
	s.db.Update(keyObject+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		var info types.ObjectInfo
		if exists {
			var err error
			info, err = codec.DecodeAs[types.ObjectInfo](cur)
			if err != nil {
				return nil, false
			}
		} else {
			info = types.ObjectInfo{ID: id}
		}
		before := info.RefCount
		info.RefCount += delta
		if info.RefCount < 0 {
			info.RefCount = 0
		}
		after = info.RefCount
		gc = before > 0 && after == 0
		return codec.MustEncode(info), true
	})
	if gc {
		s.db.Publish(chanObjGC, id[:])
		s.logEvent(types.Event{Kind: "object-gc-eligible", Object: id})
	}
	return after
}

// MarkObjectSpilled implements API.
func (s *Store) MarkObjectSpilled(id types.ObjectID, node types.NodeID, spilled bool) {
	s.db.Update(keyObject+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		info, err := codec.DecodeAs[types.ObjectInfo](cur)
		if err != nil {
			return nil, false
		}
		onDisk := info.IsSpilledOn(node)
		switch {
		case spilled && !onDisk:
			info.SpilledOn = append(info.SpilledOn, node)
		case !spilled && onDisk:
			kept := info.SpilledOn[:0]
			for _, n := range info.SpilledOn {
				if n != node {
					kept = append(kept, n)
				}
			}
			info.SpilledOn = kept
		default:
			return nil, false // no change; skip the write
		}
		return codec.MustEncode(info), true
	})
}

// SubscribeObjectGC implements API.
func (s *Store) SubscribeObjectGC() Sub { return s.db.Subscribe(chanObjGC) }

// GetObject implements API.
func (s *Store) GetObject(id types.ObjectID) (types.ObjectInfo, bool) {
	raw, ok := s.db.Get(keyObject + id.Hex())
	if !ok {
		return types.ObjectInfo{}, false
	}
	info, err := codec.DecodeAs[types.ObjectInfo](raw)
	if err != nil {
		return types.ObjectInfo{}, false
	}
	return info, true
}

// Objects implements API (inspection scan, R7).
func (s *Store) Objects() []types.ObjectInfo {
	keys := s.db.Keys(keyObject)
	out := make([]types.ObjectInfo, 0, len(keys))
	for _, k := range keys {
		if raw, ok := s.db.Get(k); ok {
			if info, err := codec.DecodeAs[types.ObjectInfo](raw); err == nil {
				out = append(out, info)
			}
		}
	}
	return out
}

// SubscribeObjectReady implements API.
func (s *Store) SubscribeObjectReady(id types.ObjectID) Sub {
	return s.db.Subscribe(chanObjReady + id.Hex())
}

// --- spillover ---

// PublishSpill implements API.
func (s *Store) PublishSpill(spec types.TaskSpec) {
	s.db.Publish(chanSpill, codec.MustEncode(spec))
	s.logEvent(types.Event{Kind: "spill", Task: spec.ID})
}

// SubscribeSpill implements API.
func (s *Store) SubscribeSpill() Sub { return s.db.Subscribe(chanSpill) }

// --- node table ---

// RegisterNode implements API.
func (s *Store) RegisterNode(info types.NodeInfo) {
	info.Alive = true
	info.LastSeen = s.NowNs()
	s.db.Put(keyNode+info.ID.Hex(), codec.MustEncode(info))
	s.db.Publish(chanNodes, codec.MustEncode(info))
	s.logEvent(types.Event{Kind: "node-join", Node: info.ID})
}

// Heartbeat implements API. Load snapshots feed the global scheduler's
// placement policy.
func (s *Store) Heartbeat(id types.NodeID, queueLen int, avail types.Resources, store types.StoreStats) {
	now := s.NowNs()
	s.db.Update(keyNode+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		info, err := codec.DecodeAs[types.NodeInfo](cur)
		if err != nil {
			return nil, false
		}
		info.LastSeen = now
		info.QueueLen = queueLen
		info.Available = avail
		info.Store = store
		info.Alive = true
		return codec.MustEncode(info), true
	})
}

// MarkNodeDead implements API.
func (s *Store) MarkNodeDead(id types.NodeID) {
	var dead types.NodeInfo
	found := false
	s.db.Update(keyNode+id.Hex(), func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			return nil, false
		}
		info, err := codec.DecodeAs[types.NodeInfo](cur)
		if err != nil {
			return nil, false
		}
		info.Alive = false
		dead, found = info, true
		return codec.MustEncode(info), true
	})
	if found {
		s.db.Publish(chanNodes, codec.MustEncode(dead))
		s.logEvent(types.Event{Kind: "node-dead", Node: id})
	}
}

// GetNode implements API.
func (s *Store) GetNode(id types.NodeID) (types.NodeInfo, bool) {
	raw, ok := s.db.Get(keyNode + id.Hex())
	if !ok {
		return types.NodeInfo{}, false
	}
	info, err := codec.DecodeAs[types.NodeInfo](raw)
	if err != nil {
		return types.NodeInfo{}, false
	}
	return info, true
}

// Nodes implements API.
func (s *Store) Nodes() []types.NodeInfo {
	keys := s.db.Keys(keyNode)
	out := make([]types.NodeInfo, 0, len(keys))
	for _, k := range keys {
		if raw, ok := s.db.Get(k); ok {
			if info, err := codec.DecodeAs[types.NodeInfo](raw); err == nil {
				out = append(out, info)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Hex() < out[j].ID.Hex() })
	return out
}

// SubscribeNodeEvents implements API.
func (s *Store) SubscribeNodeEvents() Sub { return s.db.Subscribe(chanNodes) }

// --- function table ---

// RegisterFunction implements API.
func (s *Store) RegisterFunction(info FunctionInfo) {
	s.db.Put(keyFunc+info.Name, codec.MustEncode(info))
}

// HasFunction implements API.
func (s *Store) HasFunction(name string) bool {
	_, ok := s.db.Get(keyFunc + name)
	return ok
}

// Functions implements API.
func (s *Store) Functions() []FunctionInfo {
	keys := s.db.Keys(keyFunc)
	out := make([]FunctionInfo, 0, len(keys))
	for _, k := range keys {
		if raw, ok := s.db.Get(k); ok {
			if info, err := codec.DecodeAs[FunctionInfo](raw); err == nil {
				out = append(out, info)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// --- event log ---

func (s *Store) logEvent(ev types.Event) {
	if !s.eventsOn.Load() {
		return
	}
	ev.TimeNs = s.NowNs()
	s.db.Append(keyEvents+ev.Node.Hex(), codec.MustEncode(ev))
}

// LogEvent implements API (for components logging their own events).
func (s *Store) LogEvent(ev types.Event) { s.logEvent(ev) }

// Events implements API: the merged, time-ordered event log.
func (s *Store) Events() []types.Event {
	var out []types.Event
	for _, k := range s.db.ListKeys(keyEvents) {
		for _, raw := range s.db.List(k) {
			if ev, err := codec.DecodeAs[types.Event](raw); err == nil {
				out = append(out, ev)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TimeNs < out[j].TimeNs })
	return out
}

var _ API = (*Store)(nil)
