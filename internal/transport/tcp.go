package transport

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCP is a Network over real sockets, used by cmd/raynode to run a cluster
// as separate OS processes. Wire format: 4-byte big-endian frame length
// followed by a gob-encoded frame.
type TCP struct{}

// frameKind discriminates the multiplexed message types on one connection.
type frameKind uint8

const (
	frameRequest frameKind = iota + 1
	frameResponse
	frameStreamOpen
	frameStreamMsg
	frameStreamEnd // sent by server when a stream handler returns
	frameStreamStop
)

type frame struct {
	Kind    frameKind
	ID      uint64 // request or stream ID, client-assigned
	Method  string
	Payload []byte
	Err     string
}

const maxFrameSize = 64 << 20 // 64 MiB guard against corrupt length prefixes

func writeFrame(w io.Writer, mu *sync.Mutex, f *frame) error {
	var buf []byte
	{
		var sink frameBuffer
		if err := gob.NewEncoder(&sink).Encode(f); err != nil {
			return fmt.Errorf("transport: encode frame: %w", err)
		}
		buf = sink.b
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(buf)))
	mu.Lock()
	defer mu.Unlock()
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf)
	return err
}

type frameBuffer struct{ b []byte }

func (fb *frameBuffer) Write(p []byte) (int, error) {
	fb.b = append(fb.b, p...)
	return len(p), nil
}

func readFrame(r io.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	var f frame
	if err := gob.NewDecoder(&byteReader{b: buf}).Decode(&f); err != nil {
		return nil, fmt.Errorf("transport: decode frame: %w", err)
	}
	return &f, nil
}

type byteReader struct {
	b []byte
	i int
}

func (br *byteReader) Read(p []byte) (int, error) {
	if br.i >= len(br.b) {
		return 0, io.EOF
	}
	n := copy(p, br.b[br.i:])
	br.i += n
	return n, nil
}

// --- server side ---

type tcpListener struct {
	ln   net.Listener
	wg   sync.WaitGroup
	once sync.Once
}

func (l *tcpListener) Close() error {
	var err error
	l.once.Do(func() {
		err = l.ln.Close()
		l.wg.Wait()
	})
	return err
}

// Listen implements Network.
func (TCP) Listen(addr string, srv *Server) (io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &tcpListener{ln: ln}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go serveConn(conn, srv)
		}
	}()
	return l, nil
}

// tcpServerStream implements ServerStream over one connection.
type tcpServerStream struct {
	id      uint64
	conn    net.Conn
	writeMu *sync.Mutex
	done    chan struct{}
	once    sync.Once
}

func (s *tcpServerStream) Send(payload []byte) error {
	select {
	case <-s.done:
		return ErrClosed
	default:
	}
	return writeFrame(s.conn, s.writeMu, &frame{Kind: frameStreamMsg, ID: s.id, Payload: payload})
}

func (s *tcpServerStream) Done() <-chan struct{} { return s.done }

func (s *tcpServerStream) stop() { s.once.Do(func() { close(s.done) }) }

func serveConn(conn net.Conn, srv *Server) {
	defer conn.Close()
	var writeMu sync.Mutex
	var mu sync.Mutex
	streams := make(map[uint64]*tcpServerStream)
	defer func() {
		mu.Lock()
		for _, st := range streams {
			st.stop()
		}
		mu.Unlock()
	}()
	for {
		f, err := readFrame(conn)
		if err != nil {
			return
		}
		switch f.Kind {
		case frameRequest:
			go func(f *frame) {
				resp, err := srv.dispatch(f.Method, f.Payload)
				out := &frame{Kind: frameResponse, ID: f.ID, Payload: resp}
				if err != nil {
					out.Err = err.Error()
				}
				// Best effort: if the conn died the reader loop exits anyway.
				_ = writeFrame(conn, &writeMu, out)
			}(f)
		case frameStreamOpen:
			h, ok := srv.streamHandler(f.Method)
			if !ok {
				_ = writeFrame(conn, &writeMu, &frame{Kind: frameStreamEnd, ID: f.ID, Err: ErrNoMethod.Error() + ": " + f.Method})
				continue
			}
			st := &tcpServerStream{id: f.ID, conn: conn, writeMu: &writeMu, done: make(chan struct{})}
			mu.Lock()
			streams[f.ID] = st
			mu.Unlock()
			go func(f *frame) {
				err := h(f.Payload, st)
				end := &frame{Kind: frameStreamEnd, ID: f.ID}
				if err != nil {
					end.Err = err.Error()
				}
				_ = writeFrame(conn, &writeMu, end)
				st.stop()
				mu.Lock()
				delete(streams, f.ID)
				mu.Unlock()
			}(f)
		case frameStreamStop:
			mu.Lock()
			if st, ok := streams[f.ID]; ok {
				st.stop()
				delete(streams, f.ID)
			}
			mu.Unlock()
		}
	}
}

// --- client side ---

type tcpClient struct {
	conn    net.Conn
	writeMu sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *frame      // unary calls
	streams map[uint64]*tcpClientStream // open streams
	closed  bool
}

// Dial implements Network.
func (TCP) Dial(addr string) (Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &tcpClient{
		conn:    conn,
		pending: make(map[uint64]chan *frame),
		streams: make(map[uint64]*tcpClientStream),
	}
	go c.readLoop()
	return c, nil
}

func (c *tcpClient) readLoop() {
	for {
		f, err := readFrame(c.conn)
		if err != nil {
			c.teardown(err)
			return
		}
		switch f.Kind {
		case frameResponse:
			c.mu.Lock()
			ch := c.pending[f.ID]
			delete(c.pending, f.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- f
			}
		case frameStreamMsg, frameStreamEnd:
			c.mu.Lock()
			st := c.streams[f.ID]
			if f.Kind == frameStreamEnd {
				delete(c.streams, f.ID)
			}
			c.mu.Unlock()
			if st != nil {
				st.deliver(f)
			}
		}
	}
}

func (c *tcpClient) teardown(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	pending := c.pending
	streams := c.streams
	c.pending = make(map[uint64]chan *frame)
	c.streams = make(map[uint64]*tcpClientStream)
	c.mu.Unlock()
	for _, ch := range pending {
		ch <- &frame{Kind: frameResponse, Err: ErrClosed.Error()}
	}
	for _, st := range streams {
		st.deliver(&frame{Kind: frameStreamEnd, Err: io.EOF.Error()})
	}
}

func (c *tcpClient) allocID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	return c.nextID
}

func (c *tcpClient) Call(method string, payload []byte) ([]byte, error) {
	id := c.allocID()
	ch := make(chan *frame, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.pending[id] = ch
	c.mu.Unlock()
	if err := writeFrame(c.conn, &c.writeMu, &frame{Kind: frameRequest, ID: id, Method: method, Payload: payload}); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}
	f := <-ch
	if f.Err != "" {
		return nil, errors.New(f.Err)
	}
	return f.Payload, nil
}

type tcpClientStream struct {
	id     uint64
	client *tcpClient
	msgs   chan *frame
	once   sync.Once
}

func (s *tcpClientStream) deliver(f *frame) {
	// The channel is unbounded in effect: deliver runs on the read loop, so
	// use a generous buffer and fall back to dropping the connection-fatal
	// case into a goroutine to avoid stalling other traffic.
	select {
	case s.msgs <- f:
	default:
		go func() { s.msgs <- f }()
	}
}

func (s *tcpClientStream) Recv() ([]byte, error) {
	f, ok := <-s.msgs
	if !ok {
		return nil, io.EOF
	}
	if f.Kind == frameStreamEnd {
		if f.Err != "" && f.Err != io.EOF.Error() {
			return nil, errors.New(f.Err)
		}
		return nil, io.EOF
	}
	return f.Payload, nil
}

func (s *tcpClientStream) Close() error {
	s.once.Do(func() {
		s.client.mu.Lock()
		delete(s.client.streams, s.id)
		s.client.mu.Unlock()
		_ = writeFrame(s.client.conn, &s.client.writeMu, &frame{Kind: frameStreamStop, ID: s.id})
		go func() { s.msgs <- &frame{Kind: frameStreamEnd, Err: io.EOF.Error()} }()
	})
	return nil
}

func (c *tcpClient) OpenStream(method string, payload []byte) (Stream, error) {
	id := c.allocID()
	st := &tcpClientStream{id: id, client: c, msgs: make(chan *frame, 256)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.streams[id] = st
	c.mu.Unlock()
	if err := writeFrame(c.conn, &c.writeMu, &frame{Kind: frameStreamOpen, ID: id, Method: method, Payload: payload}); err != nil {
		c.mu.Lock()
		delete(c.streams, id)
		c.mu.Unlock()
		return nil, err
	}
	return st, nil
}

func (c *tcpClient) Close() error {
	c.teardown(ErrClosed)
	return c.conn.Close()
}
