package transport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// echoServer builds a server with an echo method, a failing method, and a
// counting stream.
func echoServer() *Server {
	srv := NewServer()
	srv.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	srv.Handle("fail", func(p []byte) ([]byte, error) { return nil, errors.New("nope") })
	srv.HandleStream("count", func(p []byte, st ServerStream) error {
		n := int(p[0])
		for i := 0; i < n; i++ {
			if err := st.Send([]byte{byte(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	srv.HandleStream("forever", func(p []byte, st ServerStream) error {
		<-st.Done()
		return nil
	})
	return srv
}

// runNetworkSuite exercises one Network implementation end to end.
func runNetworkSuite(t *testing.T, nw Network, addr string) {
	t.Helper()
	srv := echoServer()
	l, err := nw.Listen(addr, srv)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	c, err := nw.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	t.Run("unary", func(t *testing.T) {
		resp, err := c.Call("echo", []byte("hi"))
		if err != nil || !bytes.Equal(resp, []byte("hi")) {
			t.Fatalf("echo = %q, %v", resp, err)
		}
	})
	t.Run("unary error", func(t *testing.T) {
		_, err := c.Call("fail", nil)
		if err == nil || err.Error() != "nope" {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("no method", func(t *testing.T) {
		if _, err := c.Call("missing", nil); err == nil {
			t.Fatal("missing method accepted")
		}
	})
	t.Run("concurrent calls", func(t *testing.T) {
		var wg sync.WaitGroup
		for i := 0; i < 32; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				payload := []byte(fmt.Sprintf("m%d", i))
				resp, err := c.Call("echo", payload)
				if err != nil || !bytes.Equal(resp, payload) {
					t.Errorf("call %d: %q, %v", i, resp, err)
				}
			}(i)
		}
		wg.Wait()
	})
	t.Run("stream", func(t *testing.T) {
		st, err := c.OpenStream("count", []byte{5})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			msg, err := st.Recv()
			if err != nil || int(msg[0]) != i {
				t.Fatalf("recv %d: %v, %v", i, msg, err)
			}
		}
		if _, err := st.Recv(); err != io.EOF {
			t.Fatalf("want EOF, got %v", err)
		}
		st.Close()
	})
	t.Run("stream client close", func(t *testing.T) {
		st, err := c.OpenStream("forever", nil)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			st.Close()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatal("stream Close hung")
		}
	})
	t.Run("stream no method", func(t *testing.T) {
		st, err := c.OpenStream("missing-stream", nil)
		if err == nil {
			// TCP reports the failure on first Recv instead of at open.
			if _, rerr := st.Recv(); rerr == nil || rerr == io.EOF {
				t.Fatal("missing stream method accepted")
			}
			st.Close()
		}
	})
}

func TestInprocNetwork(t *testing.T) { runNetworkSuite(t, NewInproc(0), "node1") }

func TestTCPNetwork(t *testing.T) { runNetworkSuite(t, TCP{}, "127.0.0.1:39181") }

func TestInprocLatencyInjection(t *testing.T) {
	nw := NewInproc(2 * time.Millisecond)
	srv := echoServer()
	l, _ := nw.Listen("n", srv)
	defer l.Close()
	c, _ := nw.Dial("n")
	defer c.Close()
	start := time.Now()
	if _, err := c.Call("echo", nil); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 4*time.Millisecond {
		t.Fatalf("round trip %v < 2 hops of 2ms", rtt)
	}
}

func TestInprocAddressReuseRejected(t *testing.T) {
	nw := NewInproc(0)
	l, err := nw.Listen("a", NewServer())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Listen("a", NewServer()); err == nil {
		t.Fatal("duplicate bind accepted")
	}
	l.Close()
	// Address usable again after close.
	l2, err := nw.Listen("a", NewServer())
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
}

func TestInprocDialUnknown(t *testing.T) {
	nw := NewInproc(0)
	if _, err := nw.Dial("ghost"); err == nil {
		t.Fatal("dial of unknown address succeeded")
	}
}

func TestClientCloseRejectsCalls(t *testing.T) {
	nw := NewInproc(0)
	l, _ := nw.Listen("n", echoServer())
	defer l.Close()
	c, _ := nw.Dial("n")
	c.Close()
	if _, err := c.Call("echo", nil); err == nil {
		t.Fatal("call on closed client succeeded")
	}
}

func TestDuplicateHandlerPanics(t *testing.T) {
	srv := NewServer()
	srv.Handle("m", func(p []byte) ([]byte, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Handle did not panic")
		}
	}()
	srv.Handle("m", func(p []byte) ([]byte, error) { return nil, nil })
}

func TestTCPLargePayload(t *testing.T) {
	srv := echoServer()
	l, err := TCP{}.Listen("127.0.0.1:39182", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := TCP{}.Dial("127.0.0.1:39182")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i)
	}
	resp, err := c.Call("echo", big)
	if err != nil || !bytes.Equal(resp, big) {
		t.Fatalf("large echo failed: %v (len %d)", err, len(resp))
	}
}

func TestTCPServerStreamStopsOnClientDisconnect(t *testing.T) {
	handlerDone := make(chan struct{})
	srv := NewServer()
	srv.HandleStream("hold", func(p []byte, st ServerStream) error {
		<-st.Done()
		close(handlerDone)
		return nil
	})
	l, err := TCP{}.Listen("127.0.0.1:39183", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := TCP{}.Dial("127.0.0.1:39183")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.OpenStream("hold", nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case <-handlerDone:
	case <-time.After(2 * time.Second):
		t.Fatal("server stream not torn down on client disconnect")
	}
}
