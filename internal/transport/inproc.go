package transport

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Inproc is an in-process Network. Every message direction pays HopLatency,
// modelling the cluster interconnect: a unary call costs two hops (request
// + response), matching the local-vs-remote latency shape of the paper's
// Section 4.1 microbenchmarks. Zero HopLatency gives a zero-cost network.
// Bandwidth, when set, additionally charges payload-proportional transfer
// time per message, so moving a large object costs more than a control
// message — the regime where the chunked pull protocol's parallel streams
// pay off (concurrent transfers overlap, modelling independent peer links).
type Inproc struct {
	// HopLatency is the one-way message delay.
	HopLatency time.Duration
	// Bandwidth is the per-stream payload rate in bytes/second; 0 means
	// infinite (payload size costs nothing).
	Bandwidth int64

	mu      sync.RWMutex
	servers map[string]*Server
}

// NewInproc creates an in-process network with the given one-way latency.
func NewInproc(hop time.Duration) *Inproc {
	return &Inproc{HopLatency: hop, servers: make(map[string]*Server)}
}

// NewInprocBandwidth creates an in-process network with one-way latency and
// a per-stream bandwidth limit.
func NewInprocBandwidth(hop time.Duration, bytesPerSec int64) *Inproc {
	return &Inproc{HopLatency: hop, Bandwidth: bytesPerSec, servers: make(map[string]*Server)}
}

type inprocListener struct {
	net  *Inproc
	addr string
}

func (l *inprocListener) Close() error {
	l.net.mu.Lock()
	delete(l.net.servers, l.addr)
	l.net.mu.Unlock()
	return nil
}

// Listen implements Network.
func (n *Inproc) Listen(addr string, srv *Server) (io.Closer, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.servers[addr]; dup {
		return nil, fmt.Errorf("transport: inproc address %q in use", addr)
	}
	n.servers[addr] = srv
	return &inprocListener{net: n, addr: addr}, nil
}

// Dial implements Network.
func (n *Inproc) Dial(addr string) (Client, error) {
	n.mu.RLock()
	srv, ok := n.servers[addr]
	n.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: no inproc server at %q", addr)
	}
	return &inprocClient{net: n, srv: srv, closed: make(chan struct{})}, nil
}

func (n *Inproc) hop() {
	if n.HopLatency > 0 {
		time.Sleep(n.HopLatency)
	}
}

// hopN is hop plus payload-proportional transfer time under the bandwidth
// model.
func (n *Inproc) hopN(payloadBytes int) {
	d := n.HopLatency
	if n.Bandwidth > 0 && payloadBytes > 0 {
		d += time.Duration(int64(payloadBytes) * int64(time.Second) / n.Bandwidth)
	}
	if d > 0 {
		time.Sleep(d)
	}
}

type inprocClient struct {
	net  *Inproc
	srv  *Server
	once sync.Once

	closed chan struct{}
}

func (c *inprocClient) Call(method string, payload []byte) ([]byte, error) {
	select {
	case <-c.closed:
		return nil, ErrClosed
	default:
	}
	c.net.hopN(len(payload)) // request hop
	resp, err := c.srv.dispatch(method, payload)
	c.net.hopN(len(resp)) // response hop
	return resp, err
}

func (c *inprocClient) OpenStream(method string, payload []byte) (Stream, error) {
	select {
	case <-c.closed:
		return nil, ErrClosed
	default:
	}
	h, ok := c.srv.streamHandler(method)
	if !ok {
		return nil, fmt.Errorf("%w: stream %s", ErrNoMethod, method)
	}
	st := &inprocStream{
		net:  c.net,
		msgs: make(chan []byte, 16),
		done: make(chan struct{}),
		errc: make(chan error, 1),
	}
	c.net.hop() // stream-open hop
	go func() {
		err := h(payload, st)
		st.errc <- err
		st.closeServerSide()
	}()
	go func() {
		// Tear the stream down if the client connection closes.
		select {
		case <-c.closed:
			st.Close()
		case <-st.done:
		}
	}()
	return st, nil
}

func (c *inprocClient) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

type inprocStream struct {
	net  *Inproc
	msgs chan []byte
	errc chan error

	mu     sync.Mutex
	closed bool
	done   chan struct{}

	sendMu sync.Mutex // serializes Send against closeServerSide
	ended  bool
}

// Send implements ServerStream.
func (s *inprocStream) Send(payload []byte) error {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if s.ended {
		return ErrClosed
	}
	msg := make([]byte, len(payload))
	copy(msg, payload)
	s.net.hop()
	select {
	case s.msgs <- msg:
		return nil
	case <-s.done:
		return ErrClosed
	}
}

// Done implements ServerStream.
func (s *inprocStream) Done() <-chan struct{} { return s.done }

func (s *inprocStream) closeServerSide() {
	s.sendMu.Lock()
	if !s.ended {
		s.ended = true
		close(s.msgs)
	}
	s.sendMu.Unlock()
}

// Recv implements Stream.
func (s *inprocStream) Recv() ([]byte, error) {
	msg, ok := <-s.msgs
	if ok {
		return msg, nil
	}
	// Channel closed: stream ended by handler return or Close.
	select {
	case err := <-s.errc:
		if err != nil {
			return nil, err
		}
	default:
	}
	return nil, io.EOF
}

// Close implements Stream (client side).
func (s *inprocStream) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.done)
	}
	return nil
}
