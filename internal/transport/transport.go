// Package transport provides the messaging substrate between nodes and
// between nodes and the control plane. Two interchangeable implementations
// exist: an in-process network with configurable per-hop latency (used by
// tests and benchmarks to model the cluster network, experiment E4) and a
// real TCP network (used by cmd/raynode for multi-process clusters). Both
// offer unary RPC and server-push streams; streams carry control-plane
// subscriptions across the network.
package transport

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/metrics"
)

// Handler serves one unary RPC method.
type Handler func(payload []byte) ([]byte, error)

// ServerStream is the server's sending end of a stream.
type ServerStream interface {
	// Send pushes one message to the client. It returns an error once the
	// stream is closed by either side.
	Send(payload []byte) error
	// Done is closed when the client goes away; long-lived handlers select
	// on it.
	Done() <-chan struct{}
}

// StreamHandler serves one streaming method. Returning ends the stream.
type StreamHandler func(payload []byte, stream ServerStream) error

// Stream is the client's receiving end of a stream.
type Stream interface {
	// Recv blocks for the next message; io.EOF signals a clean end.
	Recv() ([]byte, error)
	Close() error
}

// Client is a connection to one server.
type Client interface {
	Call(method string, payload []byte) ([]byte, error)
	OpenStream(method string, payload []byte) (Stream, error)
	Close() error
}

// Network abstracts how servers bind and clients connect.
type Network interface {
	// Listen binds srv at addr and serves until the returned closer closes.
	Listen(addr string, srv *Server) (io.Closer, error)
	// Dial connects to the server at addr.
	Dial(addr string) (Client, error)
}

// ErrNoMethod is returned for calls to unregistered methods.
var ErrNoMethod = errors.New("transport: no such method")

// ErrClosed is returned from operations on closed clients or streams.
var ErrClosed = errors.New("transport: closed")

// Server is a method registry shared by all Network implementations.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	streams  map[string]StreamHandler

	// Instrumentation (SetMetrics): dispatch is the single choke point
	// every unary call passes through regardless of Network, so these
	// three instruments cover TCP and in-process traffic alike.
	msgs     *metrics.Counter
	bytesIn  *metrics.Counter
	bytesOut *metrics.Counter
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]Handler),
		streams:  make(map[string]StreamHandler),
	}
}

// Handle registers a unary handler for method.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic(fmt.Sprintf("transport: duplicate handler for %s", method))
	}
	s.handlers[method] = h
}

// HandleStream registers a streaming handler for method.
func (s *Server) HandleStream(method string, h StreamHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.streams[method]; dup {
		panic(fmt.Sprintf("transport: duplicate stream handler for %s", method))
	}
	s.streams[method] = h
}

func (s *Server) handler(method string) (Handler, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.handlers[method]
	return h, ok
}

func (s *Server) streamHandler(method string) (StreamHandler, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.streams[method]
	return h, ok
}

// SetMetrics attaches message/byte counters to the server's dispatch
// path. Call before serving; a nil registry disables instrumentation.
func (s *Server) SetMetrics(reg *metrics.Registry) {
	s.msgs = reg.Counter("transport.messages")
	s.bytesIn = reg.Counter("transport.bytes.in")
	s.bytesOut = reg.Counter("transport.bytes.out")
}

// dispatch serves one unary call (shared by both networks).
func (s *Server) dispatch(method string, payload []byte) ([]byte, error) {
	h, ok := s.handler(method)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoMethod, method)
	}
	if s.msgs != nil {
		s.msgs.Inc()
		s.bytesIn.Add(int64(len(payload)))
	}
	resp, err := h(payload)
	if s.bytesOut != nil {
		s.bytesOut.Add(int64(len(resp)))
	}
	return resp, err
}
