package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/types"
)

// Submitter is anything tasks can be submitted through: the driver Client
// or a running task's TaskContext (R3).
type Submitter interface {
	// SubmitOpts is the canonical options-bearing submission path.
	SubmitOpts(function string, args []types.Arg, opts ...Option) ([]ObjectRef, error)
	// Submit is the legacy Call-struct path.
	//
	// Deprecated: use SubmitOpts.
	Submit(call Call) ([]ObjectRef, error)
}

// CallOpt adjusts a call's options.
//
// Deprecated: CallOpt is an alias of Option kept for source compatibility;
// use Option.
type CallOpt = Option

// WithRetries sets how many times the task is retried on failure.
//
// Deprecated: renamed to WithMaxRetries for symmetry with TaskOptions.
func WithRetries(n int) Option { return WithMaxRetries(n) }

// submitOne submits a single-return call through the options path. The
// full slice expression forces the append to copy, so a Bound handle's
// shared opts backing is never written through.
func submitOne[R any](s Submitter, name string, args []types.Arg, opts []Option) (Ref[R], error) {
	refs, err := s.SubmitOpts(name, args, append(opts[:len(opts):len(opts)], WithNumReturns(1))...)
	if err != nil {
		return Ref[R]{}, err
	}
	return Ref[R]{Ref: refs[0]}, nil
}

// Func0 is a registered remote function with no arguments.
type Func0[R any] struct{ Name string }

// Register0 registers f and returns its typed handle.
func Register0[R any](reg *Registry, name string, f func(*TaskContext) (R, error)) Func0[R] {
	reg.Register(name, func(tc *TaskContext, args [][]byte) ([][]byte, error) {
		if len(args) != 0 {
			return nil, fmt.Errorf("core: %s expects 0 args, got %d", name, len(args))
		}
		r, err := f(tc)
		if err != nil {
			return nil, err
		}
		out, err := codec.Encode(r)
		if err != nil {
			return nil, err
		}
		return [][]byte{out}, nil
	})
	return Func0[R]{Name: name}
}

// Remote submits a call of the function.
func (fn Func0[R]) Remote(s Submitter, opts ...Option) (Ref[R], error) {
	return submitOne[R](s, fn.Name, nil, opts)
}

// Options binds submission options to the handle; the returned bound
// handle submits with them: fn.Options(core.WithPlacementGroup(pg, 0),
// core.WithMaxRetries(2)).Remote(driver).
func (fn Func0[R]) Options(opts ...Option) Bound0[R] {
	return Bound0[R]{fn: fn, opts: opts}
}

// Bound0 is a Func0 with submission options attached.
type Bound0[R any] struct {
	fn   Func0[R]
	opts []Option
}

// Remote submits a call with the bound options.
func (b Bound0[R]) Remote(s Submitter) (Ref[R], error) {
	return b.fn.Remote(s, b.opts...)
}

// Func1 is a registered remote function of one argument.
type Func1[A, R any] struct{ Name string }

// Register1 registers f and returns its typed handle.
func Register1[A, R any](reg *Registry, name string, f func(*TaskContext, A) (R, error)) Func1[A, R] {
	reg.Register(name, func(tc *TaskContext, args [][]byte) ([][]byte, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("core: %s expects 1 arg, got %d", name, len(args))
		}
		a, err := codec.DecodeAs[A](args[0])
		if err != nil {
			return nil, fmt.Errorf("core: %s arg 0: %w", name, err)
		}
		r, err := f(tc, a)
		if err != nil {
			return nil, err
		}
		out, err := codec.Encode(r)
		if err != nil {
			return nil, err
		}
		return [][]byte{out}, nil
	})
	return Func1[A, R]{Name: name}
}

// Remote submits a call with an inline value argument.
func (fn Func1[A, R]) Remote(s Submitter, a A, opts ...Option) (Ref[R], error) {
	return submitOne[R](s, fn.Name, []types.Arg{Val(a)}, opts)
}

// RemoteRef submits a call whose argument is a future — the task will not
// run until the future's producer finishes (R5).
func (fn Func1[A, R]) RemoteRef(s Submitter, a Ref[A], opts ...Option) (Ref[R], error) {
	return submitOne[R](s, fn.Name, []types.Arg{TypedRefOf(a)}, opts)
}

// Options binds submission options to the handle (see Func0.Options).
func (fn Func1[A, R]) Options(opts ...Option) Bound1[A, R] {
	return Bound1[A, R]{fn: fn, opts: opts}
}

// Bound1 is a Func1 with submission options attached.
type Bound1[A, R any] struct {
	fn   Func1[A, R]
	opts []Option
}

// Remote submits a call with the bound options and an inline argument.
func (b Bound1[A, R]) Remote(s Submitter, a A) (Ref[R], error) {
	return b.fn.Remote(s, a, b.opts...)
}

// RemoteRef submits a call with the bound options and a future argument.
func (b Bound1[A, R]) RemoteRef(s Submitter, a Ref[A]) (Ref[R], error) {
	return b.fn.RemoteRef(s, a, b.opts...)
}

// Func2 is a registered remote function of two arguments.
type Func2[A, B, R any] struct{ Name string }

// Register2 registers f and returns its typed handle.
func Register2[A, B, R any](reg *Registry, name string, f func(*TaskContext, A, B) (R, error)) Func2[A, B, R] {
	reg.Register(name, func(tc *TaskContext, args [][]byte) ([][]byte, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("core: %s expects 2 args, got %d", name, len(args))
		}
		a, err := codec.DecodeAs[A](args[0])
		if err != nil {
			return nil, fmt.Errorf("core: %s arg 0: %w", name, err)
		}
		b, err := codec.DecodeAs[B](args[1])
		if err != nil {
			return nil, fmt.Errorf("core: %s arg 1: %w", name, err)
		}
		r, err := f(tc, a, b)
		if err != nil {
			return nil, err
		}
		out, err := codec.Encode(r)
		if err != nil {
			return nil, err
		}
		return [][]byte{out}, nil
	})
	return Func2[A, B, R]{Name: name}
}

// Remote submits a call with two inline value arguments.
func (fn Func2[A, B, R]) Remote(s Submitter, a A, b B, opts ...Option) (Ref[R], error) {
	return submitOne[R](s, fn.Name, []types.Arg{Val(a), Val(b)}, opts)
}

// RemoteRefs submits a call with two future arguments.
func (fn Func2[A, B, R]) RemoteRefs(s Submitter, a Ref[A], b Ref[B], opts ...Option) (Ref[R], error) {
	return submitOne[R](s, fn.Name, []types.Arg{TypedRefOf(a), TypedRefOf(b)}, opts)
}

// RemoteMixed submits a call with a future first argument and an inline
// second argument — the common "apply model to new input" shape.
func (fn Func2[A, B, R]) RemoteMixed(s Submitter, a Ref[A], b B, opts ...Option) (Ref[R], error) {
	return submitOne[R](s, fn.Name, []types.Arg{TypedRefOf(a), Val(b)}, opts)
}

// Options binds submission options to the handle (see Func0.Options).
func (fn Func2[A, B, R]) Options(opts ...Option) Bound2[A, B, R] {
	return Bound2[A, B, R]{fn: fn, opts: opts}
}

// Bound2 is a Func2 with submission options attached.
type Bound2[A, B, R any] struct {
	fn   Func2[A, B, R]
	opts []Option
}

// Remote submits a call with the bound options and inline arguments.
func (b Bound2[A, B, R]) Remote(s Submitter, a A, bb B) (Ref[R], error) {
	return b.fn.Remote(s, a, bb, b.opts...)
}

// RemoteRefs submits a call with the bound options and future arguments.
func (b Bound2[A, B, R]) RemoteRefs(s Submitter, a Ref[A], bb Ref[B]) (Ref[R], error) {
	return b.fn.RemoteRefs(s, a, bb, b.opts...)
}

// RemoteMixed submits a call with the bound options, a future first
// argument, and an inline second argument.
func (b Bound2[A, B, R]) RemoteMixed(s Submitter, a Ref[A], bb B) (Ref[R], error) {
	return b.fn.RemoteMixed(s, a, bb, b.opts...)
}

// Get resolves a typed future through the driver client.
func Get[T any](ctx context.Context, cl *Client, ref Ref[T]) (T, error) {
	data, err := cl.Get(ctx, ref.Ref)
	if err != nil {
		var zero T
		return zero, err
	}
	return codec.DecodeAs[T](data)
}

// TaskGet resolves a typed future from inside a task.
func TaskGet[T any](tc *TaskContext, ref Ref[T]) (T, error) {
	data, err := tc.Get(ref.Ref)
	if err != nil {
		var zero T
		return zero, err
	}
	return codec.DecodeAs[T](data)
}

// PutTyped stores a value and returns a typed future to it.
func PutTyped[T any](cl *Client, v T) (Ref[T], error) {
	ref, err := cl.Put(v)
	return Ref[T]{Ref: ref}, err
}

// WaitRefs adapts Wait to typed futures.
func WaitRefs[T any](ctx context.Context, cl *Client, refs []Ref[T], numReturns int, timeout time.Duration) (ready, pending []Ref[T], err error) {
	raw := make([]ObjectRef, len(refs))
	byID := make(map[types.ObjectID]Ref[T], len(refs))
	for i, r := range refs {
		raw[i] = r.Ref
		byID[r.Ref.ID] = r
	}
	rdy, pnd, err := cl.Wait(ctx, raw, numReturns, timeout)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range rdy {
		ready = append(ready, byID[r.ID])
	}
	for _, r := range pnd {
		pending = append(pending, byID[r.ID])
	}
	return ready, pending, nil
}
