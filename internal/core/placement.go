package core

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"time"

	"repro/internal/gcs"
	"repro/internal/types"
)

// PlacementGroup is the driver's handle to a gang-scheduled reservation: a
// set of resource bundles the global scheduler admits all-or-nothing
// (DESIGN.md §9). Tasks and actors join a bundle with Bundle(i) /
// WithPlacementGroup.
type PlacementGroup struct {
	ID   types.PlacementGroupID
	spec types.PlacementGroupSpec
	cl   *Client
}

// CreatePlacementGroup registers a placement group with the control plane
// and returns its handle. The group starts Pending; the global scheduler's
// gang pass reserves all bundles atomically once the cluster can fit them
// (use WaitReady to block on that). bundles lists each bundle's resource
// reservation in index order.
func (cl *Client) CreatePlacementGroup(name string, strategy types.PlacementStrategy, bundles []types.Resources) (*PlacementGroup, error) {
	var id types.PlacementGroupID
	if _, err := rand.Read(id[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	spec := types.PlacementGroupSpec{ID: id, Name: name, Strategy: strategy}
	for _, r := range bundles {
		spec.Bundles = append(spec.Bundles, types.Bundle{Resources: r.Clone()})
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if !cl.backend.Control().CreatePlacementGroup(spec) {
		// The ID is freshly random, so a duplicate means the control plane
		// could not be reached (or a pathological collision); either way the
		// group's existence is unconfirmed.
		if _, ok := cl.backend.Control().GetPlacementGroup(id); !ok {
			return nil, fmt.Errorf("core: create placement group: control plane unavailable")
		}
	}
	return &PlacementGroup{ID: id, spec: spec, cl: cl}, nil
}

// RemovePlacementGroup removes the group: its bundle reservations are
// released cluster-wide and pending member tasks fail with ErrGroupRemoved.
// This client's cached view of the group drops too, so its own later
// submissions fail at submit time; other clients' members fail
// asynchronously through the gang pass with the same typed error. An
// error means the control plane could not confirm the removal (the group
// may still hold its reservations) — retry it.
func (cl *Client) RemovePlacementGroup(id types.PlacementGroupID) error {
	cl.groups.Delete(id)
	if cl.backend.Control().RemovePlacementGroup(id) {
		return nil
	}
	// A false return is also the idempotent already-removed answer;
	// disambiguate from "unreachable" by reading the record back.
	if info, ok := cl.backend.Control().GetPlacementGroup(id); ok && info.State == types.GroupRemoved {
		return nil
	}
	return fmt.Errorf("core: remove placement group %v: control plane did not confirm", id)
}

// Bundle returns the option pinning a task (or actor) to bundle i.
func (pg *PlacementGroup) Bundle(i int) Option { return WithPlacementGroup(pg.ID, i) }

// NumBundles returns the bundle count.
func (pg *PlacementGroup) NumBundles() int { return len(pg.spec.Bundles) }

// Remove removes the group (see Client.RemovePlacementGroup).
func (pg *PlacementGroup) Remove() error { return pg.cl.RemovePlacementGroup(pg.ID) }

// WaitReady blocks until the group is Placed or the timeout expires. A
// negative timeout waits indefinitely. Removal surfaces ErrGroupRemoved;
// a timeout reports the group's last observed state.
func (pg *PlacementGroup) WaitReady(ctx context.Context, timeout time.Duration) error {
	ctrl := pg.cl.backend.Control()
	sub := ctrl.SubscribePlacementGroups()
	defer sub.Close()

	var deadline <-chan time.Time
	if timeout >= 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	// The subscription delivers every transition; the poll is only the
	// missed-edge backstop, so it stays coarse — a driver waiting tens of
	// seconds for capacity must not hammer the control plane.
	poll := time.NewTicker(250 * time.Millisecond)
	defer poll.Stop()
	last := types.GroupPending
	settle := func(state types.PlacementGroupState) error {
		last = state
		switch state {
		case types.GroupPlaced:
			return nil
		case types.GroupRemoved:
			return fmt.Errorf("%w: %v", ErrGroupRemoved, pg.ID)
		}
		return errStillWaiting
	}
	if info, ok := ctrl.GetPlacementGroup(pg.ID); ok {
		if err := settle(info.State); err != errStillWaiting {
			return err
		}
	}
	// A closed subscription channel (control plane unreachable) must
	// disable its case, not become permanently ready — otherwise the wait
	// degenerates into a zero-backoff request storm.
	events := sub.C()
	for {
		select {
		case raw, ok := <-events:
			if !ok {
				events = nil // fall back to the poll ticker alone
				continue
			}
			// The event payload carries the full record: transitions of
			// other groups (the channel is cluster-wide) cost no read RPC.
			info, err := gcs.DecodeGroupEvent(raw)
			if err != nil || info.Spec.ID != pg.ID {
				continue
			}
			if err := settle(info.State); err != errStillWaiting {
				return err
			}
		case <-poll.C: // safety net against missed edges
			if info, ok := ctrl.GetPlacementGroup(pg.ID); ok {
				if err := settle(info.State); err != errStillWaiting {
					return err
				}
			}
		case <-deadline:
			return fmt.Errorf("core: placement group %v not ready after %v (state %v)", pg.ID, timeout, last)
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// errStillWaiting is settle's internal "keep waiting" sentinel.
var errStillWaiting = errors.New("core: still waiting")
