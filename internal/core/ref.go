// Package core implements the programming model of the paper's Section 3.1:
// arbitrary functions as remote tasks, non-blocking task creation returning
// futures, get/wait on futures, futures as task arguments (dataflow
// dependencies), and task creation from within tasks (dynamic graphs).
// The same API surface is available to the driver (Client) and to running
// tasks (TaskContext), which is what R3 requires.
package core

import (
	"repro/internal/codec"
	"repro/internal/types"
)

// ObjectRef is a future [Baker & Hewitt 1977]: a handle to the eventual
// return value of a task (or a Put). It is cheap to copy and can be passed
// to other tasks as an argument, creating a dataflow edge.
type ObjectRef struct {
	ID types.ObjectID
	// Task is the producing task, when the ref came from a Submit on this
	// process (zero for Puts and refs reconstructed from bare IDs). It
	// lets owner-side waits resolve from the local task ledger's state
	// events instead of control-plane table reads (DESIGN.md §13).
	Task types.TaskID
}

// String implements fmt.Stringer.
func (r ObjectRef) String() string { return r.ID.String() }

// IsNil reports whether the ref is the zero value.
func (r ObjectRef) IsNil() bool { return r.ID.IsNil() }

// Ref[T] is a typed future produced by the generic wrappers. The type
// parameter exists purely at compile time; on the wire a Ref[T] is its
// ObjectRef.
type Ref[T any] struct {
	Ref ObjectRef
}

// Untyped returns the underlying ObjectRef.
func (r Ref[T]) Untyped() ObjectRef { return r.Ref }

// Arg converts values and refs into task arguments.
// Use Val for inline values and RefArg/TypedRefArg for futures.

// Val encodes v as an inline argument; it panics if v is unserializable
// (programming error caught at submission time, as in the paper's API).
func Val(v any) types.Arg { return types.ValueArg(codec.MustEncode(v)) }

// RefOf turns a future into a dependency argument.
func RefOf(r ObjectRef) types.Arg { return types.RefArg(r.ID) }

// TypedRefOf turns a typed future into a dependency argument.
func TypedRefOf[T any](r Ref[T]) types.Arg { return types.RefArg(r.Ref.ID) }

// Releaser is anything that can drop future references (lifetime
// subsystem): the driver Client or a running task's TaskContext.
type Releaser interface {
	Release(refs ...ObjectRef)
}

// ReleaseTyped drops references held on typed futures (see Client.Release).
func ReleaseTyped[T any](r Releaser, refs ...Ref[T]) {
	for _, ref := range refs {
		r.Release(ref.Ref)
	}
}
