package core

import (
	"fmt"
	"sync"

	"repro/internal/codec"
	"repro/internal/types"
)

// Actor support — the natural extension of the paper's model to stateful
// computation (what Ray added immediately after HotOS '17). An actor here
// is a chain of state-passing tasks: the actor's state is an object in the
// object store, and every method call is a task taking the current state
// future plus the call arguments and returning (new state, result). The
// handle threads the state future through calls, which gives three
// properties for free:
//
//   - Serialized execution: method k+1 depends on method k's state output,
//     so calls execute in submission order without locks.
//   - Locality: the placement policy favours the node holding the state
//     bytes, so an actor "stays" where its state is.
//   - Fault tolerance: state is lineage-tracked like any object; a lost
//     actor state is rebuilt by replaying its method chain (R6), with no
//     extra machinery.
type Actor struct {
	mu    sync.Mutex
	state ObjectRef
	sub   Submitter
	// pinned options applied to every method call: an actor created inside
	// a placement-group bundle stays pinned to that bundle (and its
	// locality hint), so the whole method chain runs against the gang
	// reservation.
	pinned []Option
}

// NewActor creates an actor whose initial state is the value v. The state
// is stored via an `actor.init` bootstrap task rather than a bare Put so
// that it has lineage and can be reconstructed after failures.
func NewActor(sub Submitter, initFn string, args ...types.Arg) (*Actor, error) {
	return NewActorWith(sub, initFn, nil, args...)
}

// NewActorWith is NewActor with submission options. The options apply to
// the init task and are pinned to every subsequent method call, so
// core.WithPlacementGroup(pg, i) gang-schedules the actor's entire
// lifetime into bundle i — the learner-next-to-simulators co-placement of
// the Section 4.2 workload.
func NewActorWith(sub Submitter, initFn string, opts []Option, args ...types.Arg) (*Actor, error) {
	refs, err := sub.SubmitOpts(initFn, args, append(opts[:len(opts):len(opts)], WithNumReturns(1), WithActor())...)
	if err != nil {
		return nil, fmt.Errorf("core: actor init: %w", err)
	}
	return &Actor{state: refs[0], sub: sub, pinned: opts}, nil
}

// StateRef returns the future of the actor's current state (after all
// submitted calls).
func (a *Actor) StateRef() ObjectRef {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.state
}

// Call invokes an actor method: a task whose first argument is the current
// state future and whose two returns are (new state, result). It returns
// the result future without blocking; the state future advances so the next
// Call chains behind this one.
func (a *Actor) Call(method string, args ...types.Arg) (ObjectRef, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	callArgs := append([]types.Arg{types.RefArg(a.state.ID)}, args...)
	opts := append(a.pinned[:len(a.pinned):len(a.pinned)], WithNumReturns(2), WithActor())
	refs, err := a.sub.SubmitOpts(method, callArgs, opts...)
	if err != nil {
		return ObjectRef{}, err
	}
	a.state = refs[0]
	return refs[1], nil
}

// RegisterActorInit registers an actor constructor: a function producing
// the initial state. Use its name with NewActor.
func RegisterActorInit[S any](reg *Registry, name string, fn func(tc *TaskContext) (S, error)) string {
	reg.Register(name, func(tc *TaskContext, args [][]byte) ([][]byte, error) {
		if len(args) != 0 {
			return nil, fmt.Errorf("core: actor init %s expects 0 args", name)
		}
		s, err := fn(tc)
		if err != nil {
			return nil, err
		}
		enc, err := codec.Encode(s)
		if err != nil {
			return nil, err
		}
		return [][]byte{enc}, nil
	})
	return name
}

// RegisterActorMethod registers a state-transforming method of one
// argument. The wire shape is args=[state, arg] -> [newState, result].
func RegisterActorMethod[S, A, R any](reg *Registry, name string, fn func(tc *TaskContext, state S, arg A) (S, R, error)) string {
	reg.Register(name, func(tc *TaskContext, args [][]byte) ([][]byte, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("core: actor method %s expects state + 1 arg, got %d", name, len(args))
		}
		state, err := codec.DecodeAs[S](args[0])
		if err != nil {
			return nil, fmt.Errorf("core: %s state: %w", name, err)
		}
		arg, err := codec.DecodeAs[A](args[1])
		if err != nil {
			return nil, fmt.Errorf("core: %s arg: %w", name, err)
		}
		next, result, err := fn(tc, state, arg)
		if err != nil {
			return nil, err
		}
		encState, err := codec.Encode(next)
		if err != nil {
			return nil, err
		}
		encResult, err := codec.Encode(result)
		if err != nil {
			return nil, err
		}
		return [][]byte{encState, encResult}, nil
	})
	return name
}
