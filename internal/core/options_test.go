package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/types"
)

// TestOptionsFlowIntoSpec checks every option lands in the submitted
// TaskSpec — the whole point of the options pipeline.
func TestOptionsFlowIntoSpec(t *testing.T) {
	b := newFakeBackend()
	cl := NewClient(b)

	pg, err := cl.CreatePlacementGroup("g", types.StrategyPack, []types.Resources{types.CPU(4), types.CPU(2)})
	if err != nil {
		t.Fatalf("create group: %v", err)
	}
	var locality types.NodeID
	locality[0] = 7

	refs, err := cl.SubmitOpts("fn", []types.Arg{Val(1)},
		WithResources(types.CPU(2)),
		WithMaxRetries(3),
		WithLocality(locality),
		WithPlacementGroup(pg.ID, 1),
	)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if len(refs) != 1 {
		t.Fatalf("want 1 ref, got %d", len(refs))
	}
	spec := b.lastSpec(t)
	if spec.Resources[types.ResCPU] != 2 {
		t.Errorf("resources not applied: %v", spec.Resources)
	}
	if spec.MaxRetries != 3 {
		t.Errorf("retries not applied: %d", spec.MaxRetries)
	}
	if spec.Locality != locality {
		t.Errorf("locality not applied: %v", spec.Locality)
	}
	if spec.Group != pg.ID || spec.Bundle != 1 {
		t.Errorf("placement group not applied: %v bundle %d", spec.Group, spec.Bundle)
	}
}

// TestFluentOptionsPipeline drives the typed Options(...).Remote surface.
func TestFluentOptionsPipeline(t *testing.T) {
	b := newFakeBackend()
	cl := NewClient(b)
	reg := NewRegistry()
	square := Register1(reg, "opt.square", func(tc *TaskContext, x int) (int, error) { return x * x, nil })

	if _, err := square.Options(WithResources(types.GPU(1, 1)), WithMaxRetries(2)).Remote(cl, 6); err != nil {
		t.Fatalf("fluent remote: %v", err)
	}
	spec := b.lastSpec(t)
	if spec.Function != "opt.square" || spec.Resources[types.ResGPU] != 1 || spec.MaxRetries != 2 {
		t.Errorf("fluent options not applied: %+v", spec)
	}
	if spec.NumReturns != 1 {
		t.Errorf("typed pipeline must pin NumReturns=1, got %d", spec.NumReturns)
	}
}

// TestGroupOptionValidation checks grouped submissions are validated
// against the control plane's group record at submit time.
func TestGroupOptionValidation(t *testing.T) {
	b := newFakeBackend()
	cl := NewClient(b)

	var unknown types.PlacementGroupID
	unknown[3] = 9
	if _, err := cl.SubmitOpts("fn", nil, WithPlacementGroup(unknown, 0)); !errors.Is(err, ErrGroupNotFound) {
		t.Errorf("unknown group: want ErrGroupNotFound, got %v", err)
	}

	pg, err := cl.CreatePlacementGroup("g", types.StrategyStrictSpread, []types.Resources{types.CPU(2)})
	if err != nil {
		t.Fatalf("create group: %v", err)
	}
	if _, err := cl.SubmitOpts("fn", nil, WithPlacementGroup(pg.ID, 5)); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("bundle out of range: want ErrInvalidOptions, got %v", err)
	}
	if _, err := cl.SubmitOpts("fn", nil, WithPlacementGroup(pg.ID, 0), WithResources(types.CPU(8))); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("demand beyond bundle: want ErrInvalidOptions, got %v", err)
	}

	if err := cl.RemovePlacementGroup(pg.ID); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := cl.SubmitOpts("fn", nil, pg.Bundle(0)); !errors.Is(err, ErrGroupRemoved) {
		t.Errorf("removed group: want ErrGroupRemoved, got %v", err)
	}
}

// TestDeprecatedCallPathStillWorks pins the compatibility contract: the
// old Call struct submits through the same pipeline unchanged.
func TestDeprecatedCallPathStillWorks(t *testing.T) {
	b := newFakeBackend()
	cl := NewClient(b)
	ref, err := cl.Submit1(Call{Function: "legacy", Args: []types.Arg{Val(1)}, Resources: types.CPU(3), MaxRetries: 1})
	if err != nil {
		t.Fatalf("legacy submit: %v", err)
	}
	if ref.IsNil() {
		t.Fatal("legacy submit returned nil ref")
	}
	spec := b.lastSpec(t)
	if spec.Function != "legacy" || spec.Resources[types.ResCPU] != 3 || spec.MaxRetries != 1 {
		t.Errorf("legacy call mangled: %+v", spec)
	}
	if spec.Group != types.NilPlacementGroupID || !spec.Locality.IsNil() {
		t.Errorf("legacy call must carry no group/locality: %+v", spec)
	}
}

// TestWaitValidation pins the typed validation errors: out-of-range
// numReturns and duplicate refs must fail fast instead of blocking.
func TestWaitValidation(t *testing.T) {
	b := newFakeBackend()
	cl := NewClient(b)
	ref, err := cl.Put(42)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	other, err := cl.Put(43)
	if err != nil {
		t.Fatalf("put: %v", err)
	}

	if _, _, err := cl.Wait(context.Background(), []ObjectRef{ref}, 2, time.Second); !errors.Is(err, ErrWaitInvalid) {
		t.Errorf("numReturns > len(refs): want ErrWaitInvalid, got %v", err)
	}
	if _, _, err := cl.Wait(context.Background(), []ObjectRef{ref}, -1, time.Second); !errors.Is(err, ErrWaitInvalid) {
		t.Errorf("negative numReturns: want ErrWaitInvalid, got %v", err)
	}
	// Duplicate refs with numReturns == len(refs): only one distinct
	// object can ever complete, so this used to block forever.
	done := make(chan error, 1)
	go func() {
		_, _, err := cl.Wait(context.Background(), []ObjectRef{ref, ref}, 2, -1)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrWaitInvalid) {
			t.Errorf("duplicate refs: want ErrWaitInvalid, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait with duplicate refs blocked instead of failing fast")
	}
	if _, _, err := cl.Wait(context.Background(), []ObjectRef{ref, {}}, 1, time.Second); !errors.Is(err, ErrWaitInvalid) {
		t.Errorf("nil ref: want ErrWaitInvalid, got %v", err)
	}
	// A valid wait still works.
	ready, pending, err := cl.Wait(context.Background(), []ObjectRef{ref, other}, 2, time.Second)
	if err != nil || len(ready) != 2 || len(pending) != 0 {
		t.Errorf("valid wait: ready=%d pending=%d err=%v", len(ready), len(pending), err)
	}
}

// TestActorPinsOptions checks an actor created with options threads them
// through every method call.
func TestActorPinsOptions(t *testing.T) {
	b := newFakeBackend()
	cl := NewClient(b)
	pg, err := cl.CreatePlacementGroup("g", types.StrategyPack, []types.Resources{types.CPU(4)})
	if err != nil {
		t.Fatalf("create group: %v", err)
	}
	actor, err := NewActorWith(cl, "actor.init", []Option{pg.Bundle(0), WithResources(types.CPU(1))})
	if err != nil {
		t.Fatalf("actor: %v", err)
	}
	init := b.lastSpec(t)
	if init.Group != pg.ID || init.Bundle != 0 {
		t.Errorf("init not pinned: %+v", init)
	}
	if _, err := actor.Call("actor.method", Val(1)); err != nil {
		t.Fatalf("call: %v", err)
	}
	call := b.lastSpec(t)
	if call.Group != pg.ID || call.Bundle != 0 {
		t.Errorf("method call not pinned: %+v", call)
	}
	if call.NumReturns != 2 {
		t.Errorf("actor method must declare 2 returns, got %d", call.NumReturns)
	}
}

// lastSpec returns the most recently submitted spec.
func (f *fakeBackend) lastSpec(t *testing.T) types.TaskSpec {
	t.Helper()
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.specs) == 0 {
		t.Fatal("no spec submitted")
	}
	return f.specs[len(f.specs)-1]
}
