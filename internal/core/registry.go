package core

import (
	"fmt"
	"sync"
)

// Function is the uniform execution-kernel signature (paper R4: arbitrary
// execution kernels). Argument values arrive as encoded bytes — reference
// arguments already resolved to the referenced object's bytes — and the
// function returns one encoded value per declared return.
type Function func(tc *TaskContext, args [][]byte) ([][]byte, error)

// Registry maps function names to implementations. Each worker process
// holds a registry; the control plane's function table records which names
// exist cluster-wide.
type Registry struct {
	mu  sync.RWMutex
	fns map[string]Function
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fns: make(map[string]Function)}
}

// Register adds fn under name. Duplicate names panic: function identity
// must be stable for lineage replay to be meaningful.
func (r *Registry) Register(name string, fn Function) {
	if name == "" || fn == nil {
		panic("core: Register requires a name and a function")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fns[name]; dup {
		panic(fmt.Sprintf("core: function %q already registered", name))
	}
	r.fns[name] = fn
}

// Lookup returns the function registered under name.
func (r *Registry) Lookup(name string) (Function, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.fns[name]
	return fn, ok
}

// Names returns the registered function names (for tooling).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.fns))
	for name := range r.fns {
		out = append(out, name)
	}
	return out
}
