package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/gcs"
	"repro/internal/types"
)

// fakeBackend implements Backend over a bare control plane and a local map,
// isolating core's logic from the node stack.
type fakeBackend struct {
	ctrl *gcs.Store
	node types.NodeID

	mu      sync.Mutex
	objects map[types.ObjectID][]byte
	specs   []types.TaskSpec
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		ctrl:    gcs.NewStore(2),
		node:    types.NodeID(types.DeriveTaskID(types.NilTaskID, 31337)),
		objects: make(map[types.ObjectID][]byte),
	}
}

func (f *fakeBackend) SubmitTask(spec types.TaskSpec) error {
	f.mu.Lock()
	f.specs = append(f.specs, spec)
	f.mu.Unlock()
	f.ctrl.AddTask(types.TaskState{Spec: spec})
	for i := 0; i < spec.NumReturns; i++ {
		f.ctrl.EnsureObject(spec.ReturnID(i), spec.ID)
	}
	return nil
}

func (f *fakeBackend) ResolveObject(ctx context.Context, id types.ObjectID) ([]byte, error) {
	deadline := time.After(5 * time.Second)
	for {
		f.mu.Lock()
		data, ok := f.objects[id]
		f.mu.Unlock()
		if ok {
			return data, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-deadline:
			return nil, errors.New("fake: object never arrived")
		case <-time.After(time.Millisecond):
		}
	}
}

func (f *fakeBackend) ObjectLocal(id types.ObjectID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.objects[id]
	return ok
}

func (f *fakeBackend) PutObject(id types.ObjectID, data []byte) error {
	f.mu.Lock()
	f.objects[id] = data
	f.mu.Unlock()
	f.ctrl.AddObjectLocation(id, f.node, int64(len(data)))
	return nil
}

func (f *fakeBackend) Control() gcs.API     { return f.ctrl }
func (f *fakeBackend) NodeID() types.NodeID { return f.node }

func (f *fakeBackend) submitted() []types.TaskSpec {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]types.TaskSpec(nil), f.specs...)
}

func TestSubmitDerivesDeterministicIDs(t *testing.T) {
	root := types.DeriveTaskID(types.NilTaskID, 1)
	b1 := newFakeBackend()
	c1 := NewClientWithRoot(b1, root)
	b2 := newFakeBackend()
	c2 := NewClientWithRoot(b2, root)
	r1, err := c1.Submit1(Call{Function: "f", Args: []types.Arg{Val(1)}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c2.Submit1(Call{Function: "f", Args: []types.Arg{Val(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if r1.ID != r2.ID {
		t.Fatal("same root+index produced different object IDs — replay broken")
	}
}

func TestSubmitSequentialIDsDistinct(t *testing.T) {
	c := NewClientWithRoot(newFakeBackend(), types.DeriveTaskID(types.NilTaskID, 2))
	a, _ := c.Submit1(Call{Function: "f"})
	b, _ := c.Submit1(Call{Function: "f"})
	if a.ID == b.ID {
		t.Fatal("sequential submissions share object IDs")
	}
}

func TestSubmitDefaults(t *testing.T) {
	b := newFakeBackend()
	c := NewClient(b)
	if _, err := c.Submit1(Call{Function: "f"}); err != nil {
		t.Fatal(err)
	}
	specs := b.submitted()
	if len(specs) != 1 {
		t.Fatalf("specs = %d", len(specs))
	}
	if specs[0].NumReturns != 1 {
		t.Fatalf("NumReturns = %d", specs[0].NumReturns)
	}
	if specs[0].Resources[types.ResCPU] != 1 {
		t.Fatalf("default resources = %v", specs[0].Resources)
	}
}

func TestSubmitValidationErrors(t *testing.T) {
	c := NewClient(newFakeBackend())
	if _, err := c.Submit(Call{}); err == nil {
		t.Fatal("empty function accepted")
	}
	if _, err := c.Submit(Call{Function: "f", Resources: types.Resources{"CPU": -1}}); err == nil {
		t.Fatal("negative resources accepted")
	}
}

func TestGetReturnsValueAndErrors(t *testing.T) {
	b := newFakeBackend()
	c := NewClient(b)
	ref, _ := c.Submit1(Call{Function: "f"})
	// Simulate a worker storing the return.
	if err := b.PutObject(ref.ID, codec.MustEncode(99)); err != nil {
		t.Fatal(err)
	}
	raw, err := c.Get(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	v, err := codec.DecodeAs[int](raw)
	if err != nil || v != 99 {
		t.Fatalf("got %d, %v", v, err)
	}
	// Error payload surfaces as ErrTaskFailed.
	ref2, _ := c.Submit1(Call{Function: "f"})
	_ = b.PutObject(ref2.ID, codec.EncodeError("sad"))
	if _, err := c.Get(context.Background(), ref2); !errors.Is(err, ErrTaskFailed) {
		t.Fatalf("err = %v", err)
	}
	// Nil ref is a programming error.
	if _, err := c.Get(context.Background(), ObjectRef{}); err == nil {
		t.Fatal("nil ref accepted")
	}
}

func TestPutRoundTrip(t *testing.T) {
	b := newFakeBackend()
	c := NewClient(b)
	ref, err := c.Put([]string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := c.Get(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	v, err := codec.DecodeAs[[]string](raw)
	if err != nil || len(v) != 2 || v[1] != "y" {
		t.Fatalf("got %v, %v", v, err)
	}
}

func TestPutIDsDistinct(t *testing.T) {
	c := NewClient(newFakeBackend())
	a, _ := c.Put(1)
	b, _ := c.Put(1)
	if a.ID == b.ID {
		t.Fatal("puts share IDs")
	}
}

func TestWaitCountsAndSubsets(t *testing.T) {
	b := newFakeBackend()
	c := NewClient(b)
	refs := make([]ObjectRef, 3)
	for i := range refs {
		refs[i], _ = c.Submit1(Call{Function: "f"})
	}
	_ = b.PutObject(refs[0].ID, codec.MustEncode(0))
	_ = b.PutObject(refs[2].ID, codec.MustEncode(2))
	ready, pending, err := c.Wait(context.Background(), refs, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != 2 || len(pending) != 1 || pending[0].ID != refs[1].ID {
		t.Fatalf("ready=%v pending=%v", ready, pending)
	}
	// numReturns out of range.
	if _, _, err := c.Wait(context.Background(), refs, 4, 0); err == nil {
		t.Fatal("out-of-range numReturns accepted")
	}
	// Zero timeout returns immediately with current state.
	ready, _, err = c.Wait(context.Background(), refs, 3, 0)
	if err != nil || len(ready) != 2 {
		t.Fatalf("zero-timeout wait: %v %v", ready, err)
	}
}

func TestWaitUnblocksOnLateArrival(t *testing.T) {
	b := newFakeBackend()
	c := NewClient(b)
	ref, _ := c.Submit1(Call{Function: "f"})
	go func() {
		time.Sleep(30 * time.Millisecond)
		_ = b.PutObject(ref.ID, codec.MustEncode(1))
	}()
	start := time.Now()
	ready, _, err := c.Wait(context.Background(), []ObjectRef{ref}, 1, 5*time.Second)
	if err != nil || len(ready) != 1 {
		t.Fatalf("wait: %v %v", ready, err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("wait missed the ready notification")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Register("f", func(tc *TaskContext, args [][]byte) ([][]byte, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.Register("f", func(tc *TaskContext, args [][]byte) ([][]byte, error) { return nil, nil })
}

func TestRegistryLookupAndNames(t *testing.T) {
	reg := NewRegistry()
	if _, ok := reg.Lookup("missing"); ok {
		t.Fatal("found unregistered function")
	}
	reg.Register("a", func(tc *TaskContext, args [][]byte) ([][]byte, error) { return nil, nil })
	if _, ok := reg.Lookup("a"); !ok {
		t.Fatal("lost registration")
	}
	if len(reg.Names()) != 1 {
		t.Fatal("Names wrong")
	}
}

func TestTaskContextBlockHookBrackets(t *testing.T) {
	b := newFakeBackend()
	spec := types.TaskSpec{ID: types.DeriveTaskID(types.NilTaskID, 5), Function: "f", NumReturns: 1}
	var events []bool
	var mu sync.Mutex
	hook := func(blocked bool) {
		mu.Lock()
		events = append(events, blocked)
		mu.Unlock()
	}
	tc := NewTaskContext(context.Background(), b, spec, hook)
	ref, _ := tc.Submit1(Call{Function: "g"})
	go func() {
		time.Sleep(10 * time.Millisecond)
		_ = b.PutObject(ref.ID, codec.MustEncode(1))
	}()
	if _, err := tc.Get(ref); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 || !events[0] || events[1] {
		t.Fatalf("block hook events = %v, want [true false]", events)
	}
}

func TestTaskContextChildParentage(t *testing.T) {
	b := newFakeBackend()
	spec := types.TaskSpec{ID: types.DeriveTaskID(types.NilTaskID, 6), Function: "f", NumReturns: 1}
	tc := NewTaskContext(context.Background(), b, spec, nil)
	if _, err := tc.Submit1(Call{Function: "g"}); err != nil {
		t.Fatal(err)
	}
	specs := b.submitted()
	if len(specs) != 1 || specs[0].Parent != spec.ID {
		t.Fatalf("child parent = %v, want %v", specs[0].Parent, spec.ID)
	}
	if specs[0].ID != types.DeriveTaskID(spec.ID, 1) {
		t.Fatal("child ID not derived from parent")
	}
}

func TestValPanicsOnUnserializable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Val of a channel did not panic")
		}
	}()
	Val(make(chan int))
}

// refCountingBackend wraps fakeBackend with the optional RefCounted
// interface, recording retains/releases.
type refCountingBackend struct {
	*fakeBackend
	mu       sync.Mutex
	retained map[types.ObjectID]int
}

func newRefCountingBackend() *refCountingBackend {
	return &refCountingBackend{fakeBackend: newFakeBackend(), retained: make(map[types.ObjectID]int)}
}

func (r *refCountingBackend) RetainObject(id types.ObjectID) {
	r.mu.Lock()
	r.retained[id]++
	r.mu.Unlock()
}

func (r *refCountingBackend) ReleaseObject(id types.ObjectID) {
	r.mu.Lock()
	r.retained[id]--
	r.mu.Unlock()
}

func (r *refCountingBackend) count(id types.ObjectID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retained[id]
}

// TestSubmitAndPutRetainFutures: on a lifetime-aware backend every future
// returned to the caller holds a reference until explicitly released.
func TestSubmitAndPutRetainFutures(t *testing.T) {
	b := newRefCountingBackend()
	cl := NewClient(b)

	refs, err := cl.Submit(Call{Function: "f", NumReturns: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		if b.count(r.ID) != 1 {
			t.Fatalf("submit return %v retained %d times, want 1", r, b.count(r.ID))
		}
	}
	put, err := cl.Put(42)
	if err != nil {
		t.Fatal(err)
	}
	if b.count(put.ID) != 1 {
		t.Fatalf("put retained %d times, want 1", b.count(put.ID))
	}

	cl.Release(refs[0], put)
	if b.count(refs[0].ID) != 0 || b.count(put.ID) != 0 {
		t.Fatal("release did not drop references")
	}
	if b.count(refs[1].ID) != 1 {
		t.Fatal("release touched an unreleased future")
	}
	// Nil refs are ignored.
	cl.Release(ObjectRef{})
}

// TestReleaseOnPlainBackendIsNoop: backends without lifetime support keep
// the original semantics.
func TestReleaseOnPlainBackendIsNoop(t *testing.T) {
	cl := NewClient(newFakeBackend())
	ref, err := cl.Put("x")
	if err != nil {
		t.Fatal(err)
	}
	cl.Release(ref) // must not panic
}

// TestReleaseTyped drops references through the typed helper.
func TestReleaseTyped(t *testing.T) {
	b := newRefCountingBackend()
	cl := NewClient(b)
	refs, err := cl.Submit(Call{Function: "f"})
	if err != nil {
		t.Fatal(err)
	}
	ReleaseTyped(cl, Ref[int]{Ref: refs[0]})
	if b.count(refs[0].ID) != 0 {
		t.Fatal("typed release did not drop the reference")
	}
}
