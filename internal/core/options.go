package core

import (
	"errors"
	"fmt"

	"repro/internal/types"
)

// TaskOptions is the resolved per-call submission intent: what the paper's
// Section 3.1 API leaves implicit, made first-class. Every submission path
// — raw SubmitOpts, the typed Options(...).Remote pipeline, actor calls,
// and the deprecated Call struct — funnels into one of these before a
// TaskSpec is built, so the scheduler sees one uniform surface.
type TaskOptions struct {
	// Resources is the task's demand; nil selects DefaultTaskResources.
	Resources types.Resources
	// NumReturns is the declared return count; 0 selects 1. The typed
	// pipeline pins it (Func1 returns one value by construction).
	NumReturns int
	// MaxRetries is how many times the task is retried on worker failure.
	MaxRetries int
	// Locality is a soft placement hint: prefer this node when feasible.
	Locality types.NodeID
	// Group/Bundle pin the task to a placement-group bundle; the task runs
	// on the node holding the bundle's reservation, drawing resources from
	// the reservation (gang scheduling, DESIGN.md §9).
	Group  types.PlacementGroupID
	Bundle int
	// Job attributes the task to a tenant job (DESIGN.md §14): scheduled
	// under the job's fair-share weight, metered against its quotas, and
	// reclaimed with it. Nil inherits the submitting task's job (driver
	// submissions with no job stay untenanted).
	Job types.JobID
	// Actor marks the task as an actor method or constructor, excluding it
	// from inline dispatch (DESIGN.md §15): actor methods are ordered
	// against each other and must flow through the queue.
	Actor bool
}

// Option adjusts a TaskOptions. The same options apply to task submission
// (Func*.Options(...).Remote), raw SubmitOpts, and actor creation.
type Option func(*TaskOptions)

// WithResources sets the task's resource demand (R4).
func WithResources(r types.Resources) Option {
	return func(o *TaskOptions) { o.Resources = r }
}

// WithMaxRetries sets how many times the task is retried on failure.
func WithMaxRetries(n int) Option {
	return func(o *TaskOptions) { o.MaxRetries = n }
}

// WithNumReturns sets the declared return count (untyped submissions only;
// the typed pipeline overrides it).
func WithNumReturns(n int) Option {
	return func(o *TaskOptions) { o.NumReturns = n }
}

// WithLocality hints the scheduler to prefer the given node. The hint is
// soft: an infeasible or dead node falls back to normal placement.
func WithLocality(node types.NodeID) Option {
	return func(o *TaskOptions) { o.Locality = node }
}

// WithPlacementGroup pins the task to bundle index `bundle` of a placement
// group created via Client.CreatePlacementGroup. The task is admitted only
// against the bundle's gang-scheduled reservation.
func WithPlacementGroup(id types.PlacementGroupID, bundle int) Option {
	return func(o *TaskOptions) { o.Group = id; o.Bundle = bundle }
}

// WithJob attributes the task (and, transitively, its descendants) to a
// job created via Client.CreateJob. Submission is admitted against the
// job's quotas and fails fast with ErrJobNotFound / ErrJobTerminated /
// ErrJobQuota when it cannot be.
func WithJob(id types.JobID) Option {
	return func(o *TaskOptions) { o.Job = id }
}

// WithActor marks the task as an actor method or constructor. The actor
// runtime applies it to every submission it makes; applications normally
// never need it directly.
func WithActor() Option {
	return func(o *TaskOptions) { o.Actor = true }
}

// buildOptions folds opts over the zero TaskOptions.
func buildOptions(opts []Option) TaskOptions {
	var o TaskOptions
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	return o
}

// Typed option errors surfaced at submission time.
var (
	// ErrInvalidOptions marks a structurally invalid submission (bad bundle
	// index, demand exceeding the bundle, ...).
	ErrInvalidOptions = errors.New("core: invalid task options")
	// ErrGroupNotFound marks a submission against an unknown placement
	// group — create the group (and keep its handle) before submitting.
	ErrGroupNotFound = errors.New("core: placement group not found")
	// ErrGroupRemoved marks a submission against (or a member task of) a
	// removed placement group.
	ErrGroupRemoved = errors.New("core: placement group removed")
)

// validateGroupOptions checks a grouped submission: the group must exist,
// the bundle index must be in range, and the task's demand must fit the
// bundle's reservation (a demand the bundle can never satisfy would park
// the task forever). The group spec is immutable, so each caller resolves
// it from the control plane once and validates from cache afterwards —
// hot-path member submissions (the Section 4.2 shape) pay no per-submit
// round trip. Removal is consequently detected only on the first use; a
// group removed later fails its members asynchronously through the gang
// pass with the same typed error.
func (c *caller) validateGroupOptions(o *TaskOptions, demand types.Resources) error {
	var spec types.PlacementGroupSpec
	if cached, ok := c.groups.Load(o.Group); ok {
		spec = cached.(types.PlacementGroupSpec)
	} else {
		info, ok := c.backend.Control().GetPlacementGroup(o.Group)
		if !ok {
			return fmt.Errorf("%w: %v", ErrGroupNotFound, o.Group)
		}
		if info.State == types.GroupRemoved {
			return fmt.Errorf("%w: %v", ErrGroupRemoved, o.Group)
		}
		spec = info.Spec
		c.groups.Store(o.Group, spec)
	}
	if o.Bundle < 0 || o.Bundle >= len(spec.Bundles) {
		return fmt.Errorf("%w: bundle index %d out of range [0,%d) in %v",
			ErrInvalidOptions, o.Bundle, len(spec.Bundles), o.Group)
	}
	if !demand.FeasibleOn(spec.Bundles[o.Bundle].Resources) {
		return fmt.Errorf("%w: demand %v exceeds bundle %d reservation %v of %v",
			ErrInvalidOptions, demand, o.Bundle, spec.Bundles[o.Bundle].Resources, o.Group)
	}
	return nil
}
