package core
