package core

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/gcs"
	"repro/internal/types"
)

// Backend is what the API needs from the node it runs on. node.Node is the
// production implementation; tests may substitute fakes.
type Backend interface {
	// SubmitTask hands a task to the node's local scheduler (bottom-up
	// scheduling: locally-born work goes to the local scheduler first).
	SubmitTask(spec types.TaskSpec) error
	// ResolveObject blocks until the object's bytes are locally available,
	// fetching from peers and triggering lineage reconstruction as needed.
	ResolveObject(ctx context.Context, id types.ObjectID) ([]byte, error)
	// ObjectLocal reports whether the object is already in the local store.
	ObjectLocal(id types.ObjectID) bool
	// PutObject stores bytes directly (driver- or task-created objects).
	PutObject(id types.ObjectID, data []byte) error
	// Control exposes the control plane.
	Control() gcs.API
	// NodeID identifies the backing node.
	NodeID() types.NodeID
}

// RefCounted is optionally implemented by Backends wired to the lifetime
// subsystem (node.Node is). When present, every future created by Submit
// or Put is retained on behalf of the caller, and Release drops those
// references; when the cluster-wide count reaches zero the object's bytes
// are reclaimed everywhere. Backends without it keep the original
// semantics: objects live until LRU eviction.
type RefCounted interface {
	RetainObject(id types.ObjectID)
	ReleaseObject(id types.ObjectID)
}

// TaskOwner is optionally implemented by Backends wired to the task
// ownership ledger (node.Node is; DESIGN.md §13). Futures whose producing
// task is owned by this node resolve from the ledger's in-process state
// events — a wait on locally-submitted work costs zero control-plane
// subscriptions. OwnsTask reports current local authority;
// WatchTaskTerminal's channel closes when the task reaches a terminal
// state OR local authority is dropped (transfer), so waiters re-check
// rather than trust the wake blindly.
type TaskOwner interface {
	OwnsTask(id types.TaskID) bool
	WatchTaskTerminal(id types.TaskID) <-chan struct{}
}

// InlineBackend is optionally implemented by Backends whose local scheduler
// supports inline (trampoline) dispatch (node.Node is; DESIGN.md §15).
// SubmitTaskAt carries the submitter's inline-dispatch depth so the
// scheduler can bounce deep inline chains back to the queue instead of
// growing the submitting goroutine's stack.
type InlineBackend interface {
	SubmitTaskAt(spec types.TaskSpec, depth int) error
}

// Call describes one task invocation.
//
// Deprecated: Call predates the options pipeline and carries only a subset
// of submission intent (no locality, no placement group). New code should
// use SubmitOpts or the typed Options(...).Remote pipeline; Call remains as
// a thin wrapper so existing programs keep compiling.
type Call struct {
	Function   string
	Args       []types.Arg
	NumReturns int             // 0 means 1
	Resources  types.Resources // nil means {CPU:1}
	MaxRetries int
}

// options converts the legacy Call shape into the canonical TaskOptions.
func (c Call) options() TaskOptions {
	return TaskOptions{
		Resources:  c.Resources,
		NumReturns: c.NumReturns,
		MaxRetries: c.MaxRetries,
	}
}

// DefaultTaskResources is the demand assumed when a Call leaves Resources
// nil, mirroring the paper's prototype (every task occupies one CPU unless
// it declares otherwise).
var DefaultTaskResources = types.CPU(1)

// ErrTaskFailed wraps application-level task failures surfaced through Get.
var ErrTaskFailed = errors.New("core: task failed")

// ErrWaitInvalid marks a structurally invalid Wait call (numReturns out of
// range, duplicate refs) that could otherwise block forever.
var ErrWaitInvalid = errors.New("core: invalid Wait")

// caller is the shared submission state behind Client and TaskContext: the
// owning task identity plus its child-submission counter. The counter is
// what makes child task IDs deterministic under replay (DESIGN.md §4.1).
type caller struct {
	backend Backend
	owner   types.TaskID
	// trace is stamped on every submitted spec so a driver session's whole
	// task tree shares one trace ID (descendants inherit it through
	// NewTaskContext). Zero = untraced.
	trace uint64
	// job is the caller's tenant job, inherited by child submissions that
	// carry no explicit WithJob (descendants flow through NewTaskContext
	// like trace). Nil = untenanted.
	job     types.JobID
	counter atomic.Uint64
	puts    atomic.Uint64
	// depth is the caller's inline-dispatch depth (DESIGN.md §15): zero for
	// drivers and queued tasks, >0 inside a task running inline on its
	// submitter's goroutine. Threaded into child submissions so the
	// scheduler's trampoline cap can see how deep the inline chain already
	// is.
	depth int
	// blockHook, when non-nil, brackets blocking operations so the node can
	// release the task's resources while it waits (worker lending).
	blockHook func(blocked bool)
	// groups caches immutable placement-group specs resolved for grouped
	// submissions (PlacementGroupID -> types.PlacementGroupSpec), so only
	// a group's first use pays a control-plane round trip.
	groups sync.Map
}

func (c *caller) enterBlocked() {
	if c.blockHook != nil {
		c.blockHook(true)
	}
}

func (c *caller) exitBlocked() {
	if c.blockHook != nil {
		c.blockHook(false)
	}
}

// retain records new future references with the lifetime subsystem, if the
// backend has one.
func (c *caller) retain(ids ...types.ObjectID) {
	if rc, ok := c.backend.(RefCounted); ok {
		for _, id := range ids {
			rc.RetainObject(id)
		}
	}
}

// release drops future references. Objects whose cluster-wide count
// reaches zero are garbage-collected; see Client.Release.
func (c *caller) release(refs []ObjectRef) {
	if rc, ok := c.backend.(RefCounted); ok {
		for _, r := range refs {
			if !r.IsNil() {
				rc.ReleaseObject(r.ID)
			}
		}
	}
}

// submit implements task creation (Section 3.1, items 1-3): it derives the
// deterministic task ID, validates the options against the control plane,
// hands the spec to the local scheduler, and returns futures immediately
// without waiting for execution.
func (c *caller) submit(function string, args []types.Arg, o TaskOptions) ([]ObjectRef, error) {
	if o.NumReturns == 0 {
		o.NumReturns = 1
	}
	res := o.Resources
	if res == nil {
		res = DefaultTaskResources.Clone()
	}
	if !o.Group.IsNil() {
		if err := c.validateGroupOptions(&o, res); err != nil {
			return nil, err
		}
	} else if o.Bundle != 0 {
		return nil, fmt.Errorf("%w: bundle index %d without a placement group", ErrInvalidOptions, o.Bundle)
	}
	job := o.Job
	if job.IsNil() {
		job = c.job // inherit the caller's tenancy, like trace
	}
	if !job.IsNil() {
		if err := c.admitJob(job); err != nil {
			return nil, err
		}
	}
	idx := c.counter.Add(1)
	spec := types.TaskSpec{
		ID:          types.DeriveTaskID(c.owner, idx),
		Function:    function,
		Args:        args,
		NumReturns:  o.NumReturns,
		Resources:   res,
		Parent:      c.owner,
		SubmitIndex: idx,
		MaxRetries:  o.MaxRetries,
		Locality:    o.Locality,
		Group:       o.Group,
		Bundle:      o.Bundle,
		TraceID:     c.trace,
		Job:         job,
		Actor:       o.Actor,
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	// Inside an inline execution, carry the depth to the scheduler so its
	// trampoline cap can bounce a too-deep chain back to the queue. The
	// futures below still resolve synchronously for an inline child: by the
	// time SubmitTaskAt returns from an inline run, the outputs are already
	// in the local store and Get takes the tryLocal fast path.
	if ib, ok := c.backend.(InlineBackend); ok && c.depth > 0 {
		if err := ib.SubmitTaskAt(spec, c.depth); err != nil {
			return nil, err
		}
	} else if err := c.backend.SubmitTask(spec); err != nil {
		return nil, err
	}
	refs := make([]ObjectRef, o.NumReturns)
	for i := range refs {
		refs[i] = ObjectRef{ID: spec.ReturnID(i), Task: spec.ID}
		c.retain(refs[i].ID)
	}
	return refs, nil
}

// get implements Section 3.1 item 4: block until the future's value is
// available and return it.
func (c *caller) get(ctx context.Context, ref ObjectRef) ([]byte, error) {
	if ref.IsNil() {
		return nil, fmt.Errorf("core: Get on nil ref")
	}
	if data, ok := tryLocal(c.backend, ref.ID); ok {
		return checkErrPayload(data)
	}
	c.enterBlocked()
	defer c.exitBlocked()
	data, err := c.backend.ResolveObject(ctx, ref.ID)
	if err != nil {
		return nil, err
	}
	return checkErrPayload(data)
}

// checkErrPayload surfaces stored task failures through Get (a failed
// task's return objects hold tagged error payloads; see worker.Executor).
// Gang-scheduling failures carry a recognizable reason prefix so callers
// can match the typed error instead of parsing strings.
func checkErrPayload(data []byte) ([]byte, error) {
	if msg, isErr := codec.AsError(data); isErr {
		if isGroupRemovedPayload(msg) {
			// Matches both sentinels: ErrTaskFailed keeps the documented
			// "any task failure" contract for existing callers, while
			// ErrGroupRemoved identifies the gang-removal class.
			return nil, fmt.Errorf("%w: %w: %s", ErrTaskFailed, ErrGroupRemoved, msg)
		}
		if isJobStoppedPayload(msg) {
			return nil, fmt.Errorf("%w: %w: %s", ErrTaskFailed, ErrJobTerminated, msg)
		}
		return nil, fmt.Errorf("%w: %s", ErrTaskFailed, msg)
	}
	return data, nil
}

// isGroupRemovedPayload matches the exact shape the schedulers store for
// buried group members — reason prefix plus a short group ID — so an
// application error that merely starts with the prefix text is not
// misclassified as a gang removal.
func isGroupRemovedPayload(msg string) bool {
	rest, ok := strings.CutPrefix(msg, types.ReasonGroupRemoved)
	if !ok {
		return false
	}
	rest, ok = strings.CutPrefix(rest, "pg-")
	if !ok || len(rest) != 12 {
		return false
	}
	for _, c := range rest {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

func tryLocal(b Backend, id types.ObjectID) ([]byte, bool) {
	if !b.ObjectLocal(id) {
		return nil, false
	}
	// ResolveObject on a local object returns immediately; reuse it to get
	// the bytes without duplicating store access on the Backend interface.
	data, err := b.ResolveObject(context.Background(), id)
	if err != nil {
		return nil, false
	}
	return data, true
}

// put stores a value directly and returns its future (used for broadcast
// data such as model weights). Put objects have no producing task, so they
// are not reconstructable after failures — same caveat as the prototype.
func (c *caller) put(v any) (ObjectRef, error) {
	data, err := codec.Encode(v)
	if err != nil {
		return ObjectRef{}, err
	}
	id := types.PutObjectID(c.owner, c.puts.Add(1))
	if err := c.backend.PutObject(id, data); err != nil {
		return ObjectRef{}, err
	}
	c.retain(id)
	return ObjectRef{ID: id}, nil
}

// wait implements Section 3.1 item 5: block until numReturns of the given
// futures are complete or the timeout expires, and return the completed and
// uncompleted subsets. Completion means the object is ready anywhere in the
// cluster — wait never forces a transfer, which is what lets developers use
// it to bound latency without paying for stragglers (R1).
func (c *caller) wait(ctx context.Context, refs []ObjectRef, numReturns int, timeout time.Duration) (ready, pending []ObjectRef, err error) {
	if numReturns < 0 || numReturns > len(refs) {
		return nil, nil, fmt.Errorf("%w: numReturns %d out of range [0,%d]", ErrWaitInvalid, numReturns, len(refs))
	}
	// Reject duplicate (and nil) refs up front with a typed error: a
	// repeated ref makes numReturns ambiguous — counting occurrences, one
	// completion can satisfy a wait the caller meant as "two results
	// ready"; counting distinct objects, numReturns can exceed what could
	// ever complete and block forever. Either reading silently does the
	// wrong thing for someone, so the contract is distinct refs only.
	seen := make(map[types.ObjectID]bool, len(refs))
	for _, r := range refs {
		if r.IsNil() {
			return nil, nil, fmt.Errorf("%w: nil ref", ErrWaitInvalid)
		}
		if seen[r.ID] {
			return nil, nil, fmt.Errorf("%w: duplicate ref %v", ErrWaitInvalid, r.ID)
		}
		seen[r.ID] = true
	}
	ctrl := c.backend.Control()

	var deadline <-chan time.Time
	if timeout >= 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}

	c.enterBlocked()
	defer c.exitBlocked()

	isReady := func(id types.ObjectID) bool {
		if c.backend.ObjectLocal(id) {
			return true
		}
		info, ok := ctrl.GetObject(id)
		return ok && info.State == types.ObjectReady
	}

	done := make(map[types.ObjectID]bool, len(refs))
	countReady := func() int {
		n := 0
		for _, r := range refs {
			if done[r.ID] {
				n++
				continue
			}
			if isReady(r.ID) {
				done[r.ID] = true
				n++
			}
		}
		return n
	}

	// Subscribe before the first scan so no ready transition is missed.
	// Owner-side futures (DESIGN.md §13): a ref whose producing task this
	// node's ledger owns needs NO control-plane subscription — the
	// executor stores outputs (or error payloads) strictly before the
	// terminal transition, so the ledger's terminal event implies the
	// object is resolvable locally. Those refs wake from the in-process
	// watch channel; only refs produced elsewhere (or by Puts) pay the
	// per-ref subscription stream. A ledger wake is advisory (the channel
	// also closes on ownership transfer), so it triggers a re-check, not a
	// blind completion.
	owner, _ := c.backend.(TaskOwner)
	subs := make([]gcs.Sub, 0, len(refs))
	defer func() {
		for _, s := range subs {
			s.Close()
		}
	}()
	// Each ready channel is per-object, so its first message identifies
	// exactly which ref completed — the event marks that one ref done
	// instead of re-scanning (and re-fetching) every pending object, which
	// made a window of W waits cost O(W²) object-table reads.
	readyC := make(chan types.ObjectID, len(refs))
	wakeC := make(chan types.ObjectID, len(refs))
	subscribe := func(id types.ObjectID) {
		sub := ctrl.SubscribeObjectReady(id)
		subs = append(subs, sub)
		go func(s gcs.Sub, id types.ObjectID) {
			if _, ok := <-s.C(); ok {
				readyC <- id // buffered one slot per ref; never blocks
			}
		}(sub, id)
	}
	for _, r := range refs {
		if done[r.ID] {
			continue // already ready on the first scan: no wake source needed
		}
		if owner != nil && !r.Task.IsNil() && owner.OwnsTask(r.Task) {
			watch := owner.WatchTaskTerminal(r.Task)
			go func(w <-chan struct{}, id types.ObjectID) {
				<-w
				wakeC <- id // buffered one slot per ref; never blocks
			}(watch, r.ID)
			continue
		}
		subscribe(r.ID)
	}

	// The poll is a safety net for missed edges only — completions arrive
	// through owner wakes and per-object subscriptions, so each tick's
	// full rescan (an object-table read per unready ref) should be rare,
	// not the steady-state cadence of every waiting driver.
	poll := time.NewTicker(10 * time.Millisecond)
	defer poll.Stop()
	n := countReady()
	for n < numReturns {
		select {
		case id := <-readyC:
			if !done[id] {
				done[id] = true
				n++
			}
		case id := <-wakeC:
			// Ledger event for one owned ref: re-check that ref only, never
			// trust blindly — the watch also closes on ownership transfer. A
			// full countReady() here cost O(W) object-table reads per wake,
			// O(W²) per window. If the task terminated, the executor already
			// stored the output locally; if ownership moved instead, fall
			// back to the per-object stream (subscribe-then-recheck, same
			// no-missed-edge order as the setup loop).
			if done[id] {
				break
			}
			if isReady(id) {
				done[id] = true
				n++
				break
			}
			subscribe(id)
			if isReady(id) {
				done[id] = true
				n++
			}
		case <-poll.C:
			n = countReady() // safety net against missed edges
		case <-deadline:
			goto out
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
out:
	for _, r := range refs {
		if done[r.ID] {
			ready = append(ready, r)
		} else {
			pending = append(pending, r)
		}
	}
	return ready, pending, nil
}

// Client is the driver's handle to the cluster: the root of the task tree.
type Client struct {
	caller
}

// NewClient creates a driver client over a backend with a random root task
// identity.
func NewClient(b Backend) *Client {
	var root types.TaskID
	if _, err := rand.Read(root[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return NewClientWithRoot(b, root)
}

// NewClientWithRoot creates a driver with a fixed root identity; tests use
// it for deterministic task IDs.
func NewClientWithRoot(b Backend, root types.TaskID) *Client {
	c := &Client{}
	c.backend = b
	c.owner = root
	// The trace ID derives from the root identity so replays and tests get
	// stable trace correlation without a second random draw.
	c.trace = binary.BigEndian.Uint64(root[:8])
	return c
}

// SubmitOpts creates a task with explicit per-call options and immediately
// returns its futures (non-blocking). This is the canonical untyped entry
// point; the typed Options(...).Remote pipeline builds on the same path.
func (cl *Client) SubmitOpts(function string, args []types.Arg, opts ...Option) ([]ObjectRef, error) {
	return cl.submit(function, args, buildOptions(opts))
}

// Submit creates a task and immediately returns its futures (non-blocking).
//
// Deprecated: use SubmitOpts or the typed Options(...).Remote pipeline.
func (cl *Client) Submit(call Call) ([]ObjectRef, error) {
	return cl.submit(call.Function, call.Args, call.options())
}

// Submit1 is Submit for the common single-return case.
//
// Deprecated: use SubmitOpts or the typed Options(...).Remote pipeline.
func (cl *Client) Submit1(call Call) (ObjectRef, error) {
	o := call.options()
	o.NumReturns = 1
	refs, err := cl.submit(call.Function, call.Args, o)
	if err != nil {
		return ObjectRef{}, err
	}
	return refs[0], nil
}

// Get blocks until the future completes and returns its encoded bytes.
func (cl *Client) Get(ctx context.Context, ref ObjectRef) ([]byte, error) { return cl.get(ctx, ref) }

// Wait blocks until numReturns futures complete or timeout elapses.
// A negative timeout means wait indefinitely.
func (cl *Client) Wait(ctx context.Context, refs []ObjectRef, numReturns int, timeout time.Duration) (ready, pending []ObjectRef, err error) {
	return cl.wait(ctx, refs, numReturns, timeout)
}

// Put stores a value in the local object store and returns its future.
func (cl *Client) Put(v any) (ObjectRef, error) { return cl.put(v) }

// Release drops the driver's references to the given futures. Once every
// reference in the cluster is gone the lifetime subsystem reclaims the
// objects' bytes on every node. Releasing a future and then using it (or a
// copy of it) races with that reclamation: the Get may pay a lineage
// replay. On backends without lifetime support Release is a no-op.
func (cl *Client) Release(refs ...ObjectRef) { cl.release(refs) }

// Backend exposes the underlying backend (examples and tools use it).
func (cl *Client) Backend() Backend { return cl.backend }

// TaskContext is the API handed to executing tasks. It mirrors Client — a
// running task can submit new tasks, get, wait, and put — which is exactly
// requirement R3 (dynamic task creation from within tasks).
type TaskContext struct {
	caller
	spec types.TaskSpec
	ctx  context.Context
}

// NewTaskContext is used by the executor to set up a task's API handle.
// blockHook may be nil.
func NewTaskContext(ctx context.Context, b Backend, spec types.TaskSpec, blockHook func(bool)) *TaskContext {
	tc := &TaskContext{spec: spec, ctx: ctx}
	tc.backend = b
	tc.owner = spec.ID
	tc.trace = spec.TraceID
	tc.job = spec.Job
	tc.depth = types.InlineDepthFrom(ctx)
	tc.blockHook = blockHook
	return tc
}

// Context returns the execution context (cancelled on node shutdown).
func (tc *TaskContext) Context() context.Context { return tc.ctx }

// Spec returns the executing task's spec.
func (tc *TaskContext) Spec() types.TaskSpec { return tc.spec }

// SubmitOpts creates a child task with explicit per-call options
// (non-blocking, R3).
func (tc *TaskContext) SubmitOpts(function string, args []types.Arg, opts ...Option) ([]ObjectRef, error) {
	return tc.submit(function, args, buildOptions(opts))
}

// Submit creates a child task (non-blocking, R3).
//
// Deprecated: use SubmitOpts or the typed Options(...).Remote pipeline.
func (tc *TaskContext) Submit(call Call) ([]ObjectRef, error) {
	return tc.submit(call.Function, call.Args, call.options())
}

// Submit1 is Submit for the single-return case.
//
// Deprecated: use SubmitOpts or the typed Options(...).Remote pipeline.
func (tc *TaskContext) Submit1(call Call) (ObjectRef, error) {
	o := call.options()
	o.NumReturns = 1
	refs, err := tc.submit(call.Function, call.Args, o)
	if err != nil {
		return ObjectRef{}, err
	}
	return refs[0], nil
}

// Get blocks on a future. While blocked, the task's resources are released
// back to the local scheduler so nested tasks cannot deadlock the node.
func (tc *TaskContext) Get(ref ObjectRef) ([]byte, error) { return tc.get(tc.ctx, ref) }

// Wait is the straggler-tolerant completion primitive (Section 3.1 item 5).
func (tc *TaskContext) Wait(refs []ObjectRef, numReturns int, timeout time.Duration) (ready, pending []ObjectRef, err error) {
	return tc.wait(tc.ctx, refs, numReturns, timeout)
}

// Put stores a value and returns its future.
func (tc *TaskContext) Put(v any) (ObjectRef, error) { return tc.put(v) }

// Release drops this task's references to the given futures (see
// Client.Release). Tasks that create large intermediates and consume them
// before returning can release them to bound the cluster's working set.
func (tc *TaskContext) Release(refs ...ObjectRef) { tc.release(refs) }
