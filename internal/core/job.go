package core

import (
	"crypto/rand"
	"fmt"
	"strings"

	"repro/internal/jobs"
	"repro/internal/types"
)

// Typed job-submission errors (aliases of the jobs package's, so drivers
// can errors.Is against core's public surface alone).
var (
	// ErrJobNotFound marks a submission against a job the control plane
	// has no record of — create the job before submitting under it.
	ErrJobNotFound = jobs.ErrJobNotFound
	// ErrJobTerminated marks a submission against a stopping or stopped
	// job, and also wraps Get errors for tasks buried by a job stop.
	ErrJobTerminated = jobs.ErrJobTerminated
	// ErrJobQuota marks a submission rejected by the job's admission
	// ceiling (live tasks, queue depth, or object bytes).
	ErrJobQuota = jobs.ErrJobQuota
)

// JobGate is optionally implemented by Backends wired to the jobs
// admission subsystem (node.Node is). AdmitJobTask decides one submission
// against the job's record and quotas, returning nil or one of the typed
// errors above.
type JobGate interface {
	AdmitJobTask(job types.JobID) error
}

// admitJob validates a tenanted submission. Backends with a JobGate get
// full quota admission; others fall back to record-existence and
// termination checks against the control plane directly (quotas need the
// gate's cached cluster scans to be affordable per-submit).
func (c *caller) admitJob(job types.JobID) error {
	if gate, ok := c.backend.(JobGate); ok {
		return gate.AdmitJobTask(job)
	}
	info, ok := c.backend.Control().GetJob(job)
	if !ok {
		return fmt.Errorf("%w: %s", ErrJobNotFound, job)
	}
	if info.State != types.JobRunning {
		return fmt.Errorf("%w: %s is %s", ErrJobTerminated, job, info.State)
	}
	return nil
}

// isJobStoppedPayload matches the exact shape the reclaim pass stores for
// buried tenant tasks — reason prefix plus a short job ID — so an
// application error that merely starts with the prefix text is not
// misclassified as a job stop.
func isJobStoppedPayload(msg string) bool {
	rest, ok := strings.CutPrefix(msg, types.ReasonJobStopped)
	if !ok {
		return false
	}
	rest, ok = strings.CutPrefix(rest, "job-")
	if !ok || len(rest) != 12 {
		return false
	}
	for _, c := range rest {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// Job is the driver's handle to a tenant job.
type Job struct {
	ID   types.JobID
	spec types.JobSpec
	cl   *Client
}

// CreateJob registers a job record with the control plane and returns its
// handle. weight sets the job's fair-share dispatch weight (0 selects 1);
// quota sets its admission ceilings (zero fields unlimited).
func (cl *Client) CreateJob(name string, weight int, quota types.JobQuota) (*Job, error) {
	var id types.JobID
	if _, err := rand.Read(id[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	spec := types.JobSpec{ID: id, Name: name, Weight: weight, Quota: quota}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if !cl.backend.Control().CreateJob(spec) {
		// The ID is freshly random, so a duplicate means the control plane
		// could not be reached (or a pathological collision); either way
		// the job's existence is unconfirmed.
		if _, ok := cl.backend.Control().GetJob(id); !ok {
			return nil, fmt.Errorf("core: create job: control plane unavailable")
		}
	}
	return &Job{ID: id, spec: spec, cl: cl}, nil
}

// StopJob requests the job's termination: submissions are fenced
// immediately, and the global scheduler's reclaim pass fails its live
// tasks, drops its object references, and (after a grace period)
// tombstones its records. Idempotent: stopping an already-stopping or
// stopped job succeeds.
func (cl *Client) StopJob(id types.JobID) error {
	ctrl := cl.backend.Control()
	if ctrl.CASJobState(id, []types.JobState{types.JobRunning}, types.JobStopping) {
		return nil
	}
	info, ok := ctrl.GetJob(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrJobNotFound, id)
	}
	if info.State != types.JobRunning {
		return nil // already stopping or stopped
	}
	return fmt.Errorf("core: stop job %s: control plane did not confirm", id)
}

// GetJob reads a job record back.
func (cl *Client) GetJob(id types.JobID) (types.JobInfo, bool) {
	return cl.backend.Control().GetJob(id)
}

// Jobs lists every job record.
func (cl *Client) Jobs() []types.JobInfo {
	return cl.backend.Control().Jobs()
}

// Option returns the submission option attributing a task to this job.
func (j *Job) Option() Option { return WithJob(j.ID) }

// Stop stops the job (see Client.StopJob).
func (j *Job) Stop() error { return j.cl.StopJob(j.ID) }
