package repro

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/scheduler"
	"repro/internal/types"
)

// Placement-policy ablation: Section 3.2.2 says global schedulers place
// using "object locality and resource availability". These benchmarks
// quantify the locality half: a two-stage workload where stage 2 consumes a
// large object produced by stage 1. A locality-aware policy runs stage 2
// where the bytes already live; a locality-blind one ships megabytes across
// the network per task.

// bigDepRegistry: produce(size) -> big blob; consume(blob) -> checksum.
func bigDepRegistry() *core.Registry {
	reg := core.NewRegistry()
	reg.Register("produce", func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
		size, err := codec.DecodeAs[int](args[0])
		if err != nil {
			return nil, err
		}
		blob := make([]byte, size)
		for i := range blob {
			blob[i] = byte(i)
		}
		enc, err := codec.Encode(blob)
		if err != nil {
			return nil, err
		}
		return [][]byte{enc}, nil
	})
	reg.Register("consume", func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
		blob, err := codec.DecodeAs[[]byte](args[0])
		if err != nil {
			return nil, err
		}
		sum := 0
		for _, b := range blob {
			sum += int(b)
		}
		enc, err := codec.Encode(sum)
		if err != nil {
			return nil, err
		}
		return [][]byte{enc}, nil
	})
	return reg
}

func benchPlacement(b *testing.B, policy scheduler.Policy) {
	c := mustCluster(b, cluster.Config{
		Nodes:          4,
		NodeResources:  types.CPU(4),
		Registry:       bigDepRegistry(),
		SpillThreshold: cluster.SpillThresholdOf(0), // all placement via global
		GlobalPolicy:   policy,
		HopLatency:     20 * time.Microsecond,
		// Bounded stores: long benchmark runs would otherwise accumulate
		// every 1 MiB blob forever (there is no distributed GC — true of
		// the paper's prototype as well); LRU eviction keeps the run in
		// steady state.
		StoreCapacity:   64 << 20,
		DisableEventLog: true,
	})
	d := c.Driver()
	ctx := context.Background()
	const blobSize = 1 << 20 // 1 MiB per dependency
	b.SetBytes(blobSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prod, err := d.Submit1(core.Call{
			Function: "produce",
			Args:     []types.Arg{core.Val(blobSize)},
		})
		if err != nil {
			b.Fatal(err)
		}
		cons, err := d.Submit1(core.Call{
			Function: "consume",
			Args:     []types.Arg{core.RefOf(prod)},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Get(ctx, cons); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlacementLocality is the paper's policy: stage-2 tasks follow
// their dependency bytes.
func BenchmarkPlacementLocality(b *testing.B) {
	benchPlacement(b, scheduler.LocalityPolicy{})
}

// BenchmarkPlacementRoundRobin is the locality-blind baseline: placement
// ignores where the dependency lives, so most consume tasks pull the blob
// across the network first.
func BenchmarkPlacementRoundRobin(b *testing.B) {
	benchPlacement(b, &scheduler.RoundRobinPolicy{})
}
